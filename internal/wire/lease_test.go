package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// TestLeaseRequestRoundTrip pins the v7 request shapes: GETL frames and
// LEASE-flagged SETs carrying the fill token, traced and untraced.
func TestLeaseRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGetLease, Key: 42},
		{Op: OpGetLease, Key: 1 << 60, Traced: true, Trace: TraceContext{ID: testTraceID(9), Flags: TraceFlagSampled}},
		{Op: OpSet, Key: 7, Flags: SetFlagLease, LeaseToken: 1, Value: []byte("fill")},
		{Op: OpSet, Key: 8, Flags: SetFlagLease, LeaseToken: 1 << 63, Value: nil}, // empty fill is legal
		{Op: OpSet, Key: 9, Flags: SetFlagLease, LeaseToken: 3, Value: []byte("traced fill"),
			Traced: true, Trace: TraceContext{ID: testTraceID(10), Flags: TraceFlagSampled}},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, req := range reqs {
		if err := w.WriteRequest(req); err != nil {
			t.Fatalf("write %+v: %v", req, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range reqs {
		got, err := r.ReadRequest()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Op != want.Op || got.Key != want.Key || got.Flags != want.Flags || got.LeaseToken != want.LeaseToken {
			t.Fatalf("request %d = %+v, want %+v", i, got, want)
		}
		if got.Traced != want.Traced || got.Trace != want.Trace {
			t.Fatalf("request %d trace = %v/%+v, want %v/%+v", i, got.Traced, got.Trace, want.Traced, want.Trace)
		}
		if !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("request %d value = %q, want %q", i, got.Value, want.Value)
		}
	}
}

// TestLeaseResponseRoundTrip pins the three LEASE payload shapes — grant,
// bare wait, stale hint — and the LEASE_LOST refusal.
func TestLeaseResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Status: StatusLease, Epoch: 3, LeaseToken: 99, LeaseTTL: 2 * time.Second}, // grant
		{Status: StatusLease, Epoch: 3, LeaseTTL: 150 * time.Millisecond},          // bare wait
		{Status: StatusLease, Epoch: 4, LeaseTTL: time.Second, Stale: true, Version: 1 << 40, Value: []byte("stale copy")},
		{Status: StatusLease, Epoch: 4, LeaseTTL: time.Second, Stale: true, Version: 7, Value: nil}, // empty stale value is legal
		{Status: StatusLeaseLost, Epoch: 5, Version: 1 << 41},
		{Status: StatusLeaseLost, Epoch: 5}, // winning version unknown
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, resp := range resps {
		if err := w.WriteResponse(resp); err != nil {
			t.Fatalf("write %+v: %v", resp, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range resps {
		got, err := r.ReadResponse()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Status != want.Status || got.Epoch != want.Epoch || got.LeaseToken != want.LeaseToken ||
			got.Stale != want.Stale || got.Version != want.Version {
			t.Fatalf("response %d = %+v, want %+v", i, got, want)
		}
		if got.Status == StatusLease && got.LeaseTTL != want.LeaseTTL {
			t.Fatalf("response %d TTL = %v, want %v", i, got.LeaseTTL, want.LeaseTTL)
		}
		if !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("response %d value = %q, want %q", i, got.Value, want.Value)
		}
	}
}

// TestMalformedLeaseRequestRejected pins the decoder's and encoder's
// refusal of every ill-formed lease request: zero tokens, the undefined
// LEASE flag combinations, and truncated token fields.
func TestMalformedLeaseRequestRejected(t *testing.T) {
	frame := func(body []byte) *Reader {
		var buf bytes.Buffer
		var ln [4]byte
		binary.LittleEndian.PutUint32(ln[:], uint32(len(body)))
		buf.Write(ln[:])
		buf.Write(body)
		return NewReader(&buf)
	}
	// A GETL with a short key must be rejected like a GET.
	if _, err := frame([]byte{byte(OpGetLease), 1, 2, 3}).ReadRequest(); err == nil {
		t.Fatal("short GETL accepted")
	}
	// A LEASE SET with a zero token is a protocol error: the server never
	// grants token 0, so a zero can only be an encoding bug.
	body := append([]byte{byte(OpSet)}, make([]byte, 8)...) // key
	body = append(body, byte(SetFlagLease))
	body = append(body, make([]byte, 8)...) // token = 0
	body = append(body, 'v')
	if _, err := frame(body).ReadRequest(); err == nil {
		t.Fatal("LEASE SET with a zero token accepted")
	}
	// A LEASE SET whose body ends before the token field.
	body = append([]byte{byte(OpSet)}, make([]byte, 8)...)
	body = append(body, byte(SetFlagLease), 1, 2, 3)
	if _, err := frame(body).ReadRequest(); err == nil {
		t.Fatal("LEASE SET with a truncated token field accepted")
	}
	// LEASE combines with nothing: a fill is not maintenance traffic.
	for _, flags := range []SetFlags{
		SetFlagLease | SetFlagRepair,
		SetFlagLease | SetFlagRepair | SetFlagAsync,
		SetFlagLease | SetFlagRepair | SetFlagVersioned,
	} {
		body = append([]byte{byte(OpSet)}, make([]byte, 8)...)
		body = append(body, byte(flags))
		body = append(body, make([]byte, 17)...) // more than enough field bytes
		if _, err := frame(body).ReadRequest(); err == nil {
			t.Fatalf("LEASE SET with flags %#02x accepted", byte(flags))
		}
	}
	// The encoder refuses the same ill-formed requests.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRequest(Request{Op: OpSet, Flags: SetFlagLease, LeaseToken: 0, Value: []byte("v")}); err == nil {
		t.Fatal("encoder accepted a zero lease token")
	}
	if err := w.WriteRequest(Request{Op: OpSet, Flags: SetFlagLease | SetFlagRepair, LeaseToken: 1}); err == nil {
		t.Fatal("encoder accepted LEASE|REPAIR")
	}
}

// TestMalformedLeaseResponseRejected pins the client-side refusal of
// every ill-formed LEASE and LEASE_LOST payload: zero TTLs, undefined
// stale bytes, grants carrying stale hints, and wrong lengths.
func TestMalformedLeaseResponseRejected(t *testing.T) {
	// leaseFrame builds a raw LEASE response frame from its payload parts.
	leaseFrame := func(token uint64, ttlMs uint32, tail ...byte) *Reader {
		body := []byte{byte(StatusLease)}
		body = binary.LittleEndian.AppendUint64(body, 1) // epoch
		body = binary.LittleEndian.AppendUint64(body, token)
		body = binary.LittleEndian.AppendUint32(body, ttlMs)
		body = append(body, tail...)
		var buf bytes.Buffer
		var ln [4]byte
		binary.LittleEndian.PutUint32(ln[:], uint32(len(body)))
		buf.Write(ln[:])
		buf.Write(body)
		return NewReader(&buf)
	}
	staleTail := func(ver uint64, val string) []byte {
		tail := []byte{1}
		tail = binary.LittleEndian.AppendUint64(tail, ver)
		return append(tail, val...)
	}
	if _, err := leaseFrame(7, 0, 0).ReadResponse(); err == nil {
		t.Fatal("LEASE with a zero TTL accepted")
	}
	if _, err := leaseFrame(7, 100, 2).ReadResponse(); err == nil {
		t.Fatal("LEASE with stale byte 2 accepted")
	}
	if _, err := leaseFrame(7, 100, 0, 'x').ReadResponse(); err == nil {
		t.Fatal("bare LEASE with trailing bytes accepted")
	}
	if _, err := leaseFrame(7, 100, staleTail(9, "v")...).ReadResponse(); err == nil {
		t.Fatal("LEASE grant carrying a stale hint accepted")
	}
	if _, err := leaseFrame(0, 100, 1, 1, 2, 3).ReadResponse(); err == nil {
		t.Fatal("stale LEASE with a truncated hint version accepted")
	}
	if _, err := leaseFrame(0, 100).ReadResponse(); err == nil {
		t.Fatal("LEASE body shorter than token+ttl+stale accepted")
	}
	if _, err := leaseFrame(0, 100, staleTail(9, "ok")...).ReadResponse(); err != nil {
		t.Fatalf("well-formed stale hint rejected: %v", err)
	}

	// LEASE_LOST must carry exactly the winning version.
	lostFrame := func(tail ...byte) *Reader {
		body := []byte{byte(StatusLeaseLost)}
		body = binary.LittleEndian.AppendUint64(body, 1) // epoch
		body = append(body, tail...)
		var buf bytes.Buffer
		var ln [4]byte
		binary.LittleEndian.PutUint32(ln[:], uint32(len(body)))
		buf.Write(ln[:])
		buf.Write(body)
		return NewReader(&buf)
	}
	if _, err := lostFrame(1, 2, 3).ReadResponse(); err == nil {
		t.Fatal("short LEASE_LOST accepted")
	}
	if _, err := lostFrame(make([]byte, 9)...).ReadResponse(); err == nil {
		t.Fatal("oversize LEASE_LOST accepted")
	}

	// The encoder refuses a grant that carries a stale hint.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteResponse(Response{Status: StatusLease, LeaseToken: 7, LeaseTTL: time.Second, Stale: true, Version: 1, Value: []byte("v")}); err == nil {
		t.Fatal("encoder accepted a LEASE grant with a stale hint")
	}
}

// TestLeaseHistogramNames pins the GETL row of the per-op histogram ID
// space: metrics collected for GETL must name and validate like any
// other opcode's.
func TestLeaseHistogramNames(t *testing.T) {
	if !validHistID(byte(OpGetLease)) {
		t.Fatal("GETL opcode is not a valid histogram ID")
	}
	if got := HistName(byte(OpGetLease)); got != "GETL" {
		t.Fatalf("HistName(GETL) = %q", got)
	}
}
