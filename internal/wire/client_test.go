package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
)

// fakeServer accepts one connection and hands it to serve on a goroutine.
func fakeServer(t *testing.T, serve func(conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		serve(conn)
	}()
	return ln.Addr().String()
}

// TestClientServerCloseMidPipeline: the server answers one request of a
// pipelined batch and closes. The delivered response must still parse; the
// next read must fail rather than hang.
func TestClientServerCloseMidPipeline(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		r, w := NewReader(conn), NewWriter(conn)
		if err := r.ReadPreamble(); err != nil {
			t.Errorf("preamble: %v", err)
			return
		}
		if _, err := r.ReadRequest(); err != nil {
			t.Errorf("request: %v", err)
			return
		}
		w.WriteResponse(Response{Status: StatusMiss})
		w.Flush()
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := uint64(0); i < 3; i++ {
		if err := c.EnqueueGet(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := c.ReadResponse()
	if err != nil || resp.Status != StatusMiss {
		t.Fatalf("first pipelined response = %v, %v; want MISS", resp.Status, err)
	}
	if _, err := c.ReadResponse(); err == nil {
		t.Fatal("read past server close succeeded; want error")
	}
}

// TestClientTruncatedResponse: a frame whose length prefix promises more
// bytes than the server delivers must produce a decode error, not garbage.
func TestClientTruncatedResponse(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		r := NewReader(conn)
		if err := r.ReadPreamble(); err != nil {
			return
		}
		if _, err := r.ReadRequest(); err != nil {
			return
		}
		var ln [4]byte
		binary.LittleEndian.PutUint32(ln[:], 10)
		conn.Write(ln[:])
		conn.Write([]byte{byte(StatusHit), 'x', 'y'}) // 3 of 10 promised bytes
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Get(1); err == nil {
		t.Fatal("Get over a truncated response succeeded; want error")
	} else if !strings.Contains(err.Error(), "frame body") && err != io.ErrUnexpectedEOF && !strings.Contains(err.Error(), "unexpected EOF") {
		t.Fatalf("truncation error = %v; want a frame-body read failure", err)
	}
}

// TestVersionMismatch: a preamble with the wrong version must be rejected
// by the reader, and a server receiving one must drop the connection so
// the client sees an error instead of a hang.
func TestVersionMismatch(t *testing.T) {
	var pre bytes.Buffer
	pre.WriteString(Magic)
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], Version+41)
	pre.Write(v[:])
	err := NewReader(&pre).ReadPreamble()
	if err == nil || !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("ReadPreamble(version %d) = %v; want ErrVersionMismatch", Version+41, err)
	}

	var bad bytes.Buffer
	bad.WriteString("NOPE")
	bad.Write(v[:])
	if err := NewReader(&bad).ReadPreamble(); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("ReadPreamble(bad magic) = %v; want bad-magic error", err)
	}

	// End to end: a server that validates the preamble closes on mismatch
	// and the client's first read fails cleanly.
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		if err := NewReader(conn).ReadPreamble(); err == nil {
			t.Error("server accepted a mismatched preamble")
		}
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(append([]byte(Magic), v[:]...)); err != nil {
		t.Fatal(err)
	}
	r := NewReader(conn)
	if _, err := r.ReadResponse(); err == nil {
		t.Fatal("read after mismatched preamble succeeded; want connection error")
	}
}

// TestClientKeysStream covers the chunked KEYS stream: the client must
// collect every chunk, stop at the terminator, and leave the connection
// usable for the next request.
func TestClientKeysStream(t *testing.T) {
	chunks := [][]KeyRec{
		{{Key: 1, Version: 10}, {Key: 2, Version: 20, Tombstone: true}, {Key: 3, Version: 30}},
		{{Key: 4, Version: 40}, {Key: 5, Version: 50}},
		{{Key: 6, Version: 60, Tombstone: true}},
	}
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		r, w := NewReader(conn), NewWriter(conn)
		if err := r.ReadPreamble(); err != nil {
			return
		}
		// First request: KEYS → three chunks + terminator, all epoch 9.
		if _, err := r.ReadRequest(); err != nil {
			return
		}
		for _, c := range chunks {
			w.WriteResponse(Response{Status: StatusKeys, Keys: c, Epoch: 9})
		}
		w.WriteResponse(Response{Status: StatusKeys, Epoch: 9})
		w.Flush()
		// Second request: GET → MISS, proving the stream terminated cleanly.
		if _, err := r.ReadRequest(); err != nil {
			return
		}
		w.WriteResponse(Response{Status: StatusMiss, Epoch: 9})
		w.Flush()
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var got []KeyRec
	frames := 0
	if err := c.KeysStream(func(chunk []KeyRec) error {
		frames++
		got = append(got, chunk...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if frames != len(chunks) {
		t.Errorf("visited %d chunk frames, want %d", frames, len(chunks))
	}
	var want []KeyRec
	for _, c := range chunks {
		want = append(want, c...)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed records = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("streamed records = %v, want %v", got, want)
		}
	}
	if e := c.LastEpoch(); e != 9 {
		t.Errorf("LastEpoch = %d, want 9 (from the stream frames)", e)
	}
	if _, hit, err := c.Get(42); err != nil || hit {
		t.Fatalf("Get after KEYS stream = hit=%v, %v; connection should be clean", hit, err)
	}
}

// TestClientKeysStreamVisitError: a visit error must surface to the caller
// but the stream must still be drained to its terminator, leaving the
// connection synchronized for the next request.
func TestClientKeysStreamVisitError(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		r, w := NewReader(conn), NewWriter(conn)
		if err := r.ReadPreamble(); err != nil {
			return
		}
		if _, err := r.ReadRequest(); err != nil {
			return
		}
		for _, c := range [][]KeyRec{{{Key: 1}, {Key: 2}}, {{Key: 3}, {Key: 4}}, {{Key: 5}}} {
			w.WriteResponse(Response{Status: StatusKeys, Keys: c})
		}
		w.WriteResponse(Response{Status: StatusKeys})
		w.Flush()
		if _, err := r.ReadRequest(); err != nil {
			return
		}
		w.WriteResponse(Response{Status: StatusMiss})
		w.Flush()
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	visits := 0
	boom := fmt.Errorf("abort after first chunk")
	if err := c.KeysStream(func([]KeyRec) error {
		visits++
		return boom
	}); err != boom {
		t.Fatalf("KeysStream = %v, want the visit error %v", err, boom)
	}
	if visits != 1 {
		t.Errorf("visit called %d times after erroring, want 1", visits)
	}
	if _, hit, err := c.Get(7); err != nil || hit {
		t.Fatalf("Get after aborted stream = hit=%v, %v; the stream must have been drained", hit, err)
	}
}

// TestClientMembersAndPush covers the MEMBERS fetch and TOPOLOGY push round
// trips.
func TestClientMembersAndPush(t *testing.T) {
	held := Topology{Epoch: 3, Members: []string{"a:1", "b:1"}}
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		r, w := NewReader(conn), NewWriter(conn)
		if err := r.ReadPreamble(); err != nil {
			return
		}
		for {
			req, err := r.ReadRequest()
			if err != nil {
				return
			}
			switch req.Op {
			case OpMembers:
				w.WriteResponse(Response{Status: StatusMembers, Epoch: held.Epoch, Topology: held})
			case OpTopology:
				if req.Topology.Epoch > held.Epoch {
					held = req.Topology
				}
				w.WriteResponse(Response{Status: StatusMembers, Epoch: held.Epoch, Topology: held})
			}
			w.Flush()
		}
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	got, err := c.Members()
	if err != nil || got.Epoch != 3 || len(got.Members) != 2 {
		t.Fatalf("Members() = %+v, %v", got, err)
	}
	// A stale push loses: the server's newer view comes back.
	after, err := c.PushTopology(Topology{Epoch: 2, Members: []string{"z:1"}})
	if err != nil || after.Epoch != 3 {
		t.Fatalf("stale push returned %+v, %v; want the held epoch-3 view", after, err)
	}
	// A newer push wins.
	after, err = c.PushTopology(Topology{Epoch: 4, Members: []string{"a:1", "b:1", "c:1"}})
	if err != nil || after.Epoch != 4 || len(after.Members) != 3 {
		t.Fatalf("newer push returned %+v, %v; want it adopted", after, err)
	}
}

// TestKeysRoundTrip covers the KEYS frames the cluster migration relies on.
func TestKeysRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := []KeyRec{
		{Key: 1, Version: 7},
		{Key: 1 << 40, Version: 1 << 50, Tombstone: true},
		{Key: 42, Version: 3},
	}
	if err := w.WriteResponse(Response{Status: StatusKeys, Keys: want}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteResponse(Response{Status: StatusKeys}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	resp, err := r.ReadResponse()
	if err != nil || resp.Status != StatusKeys {
		t.Fatalf("ReadResponse = %v, %v", resp.Status, err)
	}
	if len(resp.Keys) != len(want) {
		t.Fatalf("keys = %v, want %v", resp.Keys, want)
	}
	for i := range want {
		if resp.Keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", resp.Keys, want)
		}
	}
	resp, err = r.ReadResponse()
	if err != nil || resp.Status != StatusKeys || len(resp.Keys) != 0 {
		t.Fatalf("empty KEYS = %v (%d keys), %v", resp.Status, len(resp.Keys), err)
	}
}
