package wire

import (
	"bytes"
	"errors"
	"testing"
)

// failWriter accepts okCalls Write calls and fails every one after, so
// tests can kill a flush at an exact segment boundary — including in the
// middle of a multi-segment (vectored) flush.
type failWriter struct {
	okCalls int
	calls   int
	wrote   int
	boom    error
}

func (f *failWriter) Write(p []byte) (int, error) {
	f.calls++
	if f.calls > f.okCalls {
		return 0, f.boom
	}
	f.wrote += len(p)
	return len(p), nil
}

// TestWriterFlushErrorSticky: a failed flush must poison the Writer — the
// buffered frames are discarded, every later call returns the same error,
// and nothing is ever written again. Resending would put half a frame (or
// a duplicate one) on a stream the peer has already desynchronized from.
func TestWriterFlushErrorSticky(t *testing.T) {
	boom := errors.New("pipe burst")
	fw := &failWriter{okCalls: 0, boom: boom}
	w := NewWriter(fw)
	if err := w.WriteRequest(Request{Op: OpGet, Key: 7}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != boom {
		t.Fatalf("Flush = %v, want %v", err, boom)
	}
	if err := w.WriteRequest(Request{Op: OpGet, Key: 8}); err != boom {
		t.Fatalf("WriteRequest after failed flush = %v, want sticky %v", err, boom)
	}
	if err := w.WriteResponse(Response{Status: StatusMiss}); err != boom {
		t.Fatalf("WriteResponse after failed flush = %v, want sticky %v", err, boom)
	}
	calls := fw.calls
	if err := w.Flush(); err != boom {
		t.Fatalf("second Flush = %v, want sticky %v", err, boom)
	}
	if fw.calls != calls {
		t.Fatalf("sticky Writer wrote again: %d calls, want %d", fw.calls, calls)
	}
}

// TestWriterFlushErrorMidWritev: the corked path sends a flush as multiple
// segments (frame chunk + zero-copy value). A failure after the first
// segment must not leave the unsent tail — or the half-sent head — behind
// as reusable scratch: the Writer goes sticky and never writes again.
func TestWriterFlushErrorMidWritev(t *testing.T) {
	boom := errors.New("reset mid-writev")
	fw := &failWriter{okCalls: 1, boom: boom}
	w := NewWriter(fw)
	val := make([]byte, zeroCopyMin) // big enough to travel as its own segment
	if err := w.WriteRequest(Request{Op: OpSet, Key: 1, Value: val}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != boom {
		t.Fatalf("Flush = %v, want %v", err, boom)
	}
	if fw.calls < 2 {
		t.Fatalf("flush made %d Write calls, want ≥2 (chunk + value segment)", fw.calls)
	}
	calls, wrote := fw.calls, fw.wrote
	if err := w.Flush(); err != boom {
		t.Fatalf("Flush after mid-writev failure = %v, want sticky %v", err, boom)
	}
	if err := w.WriteRequest(Request{Op: OpGet, Key: 2}); err != boom {
		t.Fatalf("WriteRequest after mid-writev failure = %v, want sticky %v", err, boom)
	}
	if fw.calls != calls || fw.wrote != wrote {
		t.Fatalf("sticky Writer wrote again after partial flush (%d calls/%d bytes, was %d/%d)",
			fw.calls, fw.wrote, calls, wrote)
	}
}

// TestCodecScratchShrinks pins the shrink-on-idle policy on both codec
// ends: one oversized frame (a big KEYS chunk) must not pin its buffer on
// the connection forever once traffic goes back to small frames.
func TestCodecScratchShrinks(t *testing.T) {
	big := make([]KeyRec, 2*codecShrinkCap/keyRecLen) // 2× the cap once encoded
	var stream bytes.Buffer
	w := NewWriter(&stream)
	if err := w.WriteResponse(Response{Status: StatusKeys, Keys: big}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if cap(w.chunk) <= codecShrinkCap {
		t.Fatalf("precondition: chunk cap %d not grown past %d", cap(w.chunk), codecShrinkCap)
	}
	for i := 0; i < codecIdleFrames; i++ {
		if err := w.WriteResponse(Response{Status: StatusMiss}); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if cap(w.chunk) > codecShrinkCap {
		t.Errorf("writer chunk cap %d after %d idle flushes, want ≤%d",
			cap(w.chunk), codecIdleFrames, codecShrinkCap)
	}

	r := NewReader(&stream)
	resp, err := r.ReadResponse()
	if err != nil || len(resp.Keys) != len(big) {
		t.Fatalf("big KEYS frame: %d keys, %v", len(resp.Keys), err)
	}
	if cap(r.body) <= codecShrinkCap {
		t.Fatalf("precondition: body cap %d not grown past %d", cap(r.body), codecShrinkCap)
	}
	for i := 0; i < codecIdleFrames; i++ {
		if resp, err := r.ReadResponse(); err != nil || resp.Status != StatusMiss {
			t.Fatalf("small frame %d: %v, %v", i, resp.Status, err)
		}
	}
	if cap(r.body) > codecShrinkCap {
		t.Errorf("reader body cap %d after %d small frames, want ≤%d",
			cap(r.body), codecIdleFrames, codecShrinkCap)
	}
	if r.keys != nil {
		t.Errorf("reader keys buffer survived the shrink (cap %d)", cap(r.keys))
	}
}

// TestZeroCopyValueRoundTrip: values at and above zeroCopyMin travel as
// their own flush segment with the frame length counting them as external
// bytes — the frames must still decode byte-identically on the other end,
// interleaved with copied (small) values in the same flush.
func TestZeroCopyValueRoundTrip(t *testing.T) {
	bigVal := make([]byte, zeroCopyMin+3)
	for i := range bigVal {
		bigVal[i] = byte(i * 7)
	}
	smallVal := []byte("tiny")

	var stream bytes.Buffer
	w := NewWriter(&stream)
	if err := w.WriteRequest(Request{Op: OpSet, Key: 1, Value: bigVal}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRequest(Request{Op: OpSet, Key: 2, Value: smallVal}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteResponse(Response{Status: StatusHit, Version: 9, Value: bigVal}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&stream)
	req, err := r.ReadRequest()
	if err != nil || req.Key != 1 || !bytes.Equal(req.Value, bigVal) {
		t.Fatalf("zero-copy SET decoded key=%d len=%d err=%v", req.Key, len(req.Value), err)
	}
	req, err = r.ReadRequest()
	if err != nil || req.Key != 2 || !bytes.Equal(req.Value, smallVal) {
		t.Fatalf("copied SET decoded key=%d %q err=%v", req.Key, req.Value, err)
	}
	resp, err := r.ReadResponse()
	if err != nil || resp.Status != StatusHit || resp.Version != 9 || !bytes.Equal(resp.Value, bigVal) {
		t.Fatalf("zero-copy HIT decoded %v ver=%d len=%d err=%v",
			resp.Status, resp.Version, len(resp.Value), err)
	}
}
