package wire

import (
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// These tests pin the wire-protocol specification in ARCHITECTURE.md to the
// implementation: every constant the document states — magic, version,
// frame cap, opcode and status codes, SET flag bits, and the STATS payload
// field order — is parsed out of the markdown tables and compared against
// the package. Charge the spec, forget the code (or vice versa), and CI
// fails.

// specDoc loads ARCHITECTURE.md from the repository root.
func specDoc(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile("../../ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("the wire spec lives in ARCHITECTURE.md and must exist: %v", err)
	}
	return string(b)
}

// specSection returns the part of doc between the heading containing
// marker and the next heading of the same or higher level.
func specSection(t *testing.T, doc, marker string) string {
	t.Helper()
	idx := strings.Index(doc, marker)
	if idx < 0 {
		t.Fatalf("ARCHITECTURE.md lacks the %q section", marker)
	}
	rest := doc[idx:]
	if end := strings.Index(rest[1:], "\n#"); end >= 0 {
		return rest[:end+1]
	}
	return rest
}

// tableCodes extracts |NAME|number| rows from a markdown section.
func tableCodes(section string) map[string]int {
	rows := regexp.MustCompile(`(?m)^\|\s*([A-Z_]+)\s*\|\s*(\d+)\s*\|`).FindAllStringSubmatch(section, -1)
	out := make(map[string]int, len(rows))
	for _, r := range rows {
		n, _ := strconv.Atoi(r[2])
		out[r[1]] = n
	}
	return out
}

func TestSpecPreambleAndLimits(t *testing.T) {
	doc := specDoc(t)

	pre := specSection(t, doc, "### Preamble")
	magic := regexp.MustCompile(`\|\s*magic\s*\|\s*\[4\]byte\s*\|\s*"([A-Z]+)"`).FindStringSubmatch(pre)
	if magic == nil || magic[1] != Magic {
		t.Errorf("spec magic = %v, implementation %q", magic, Magic)
	}
	version := regexp.MustCompile(`\|\s*version\s*\|\s*uint32\s*\|\s*(\d+)`).FindStringSubmatch(pre)
	if version == nil || version[1] != strconv.Itoa(Version) {
		t.Errorf("spec version = %v, implementation %d", version, Version)
	}

	limits := specSection(t, doc, "### Limits")
	for _, lim := range []struct {
		name string
		impl int
	}{
		{"MaxFrame", MaxFrame},
		{"KeysChunk", DefaultKeysChunk},
		{"MaxMembers", MaxMembers},
		{"MaxAddrLen", MaxAddrLen},
	} {
		got := regexp.MustCompile(`\|\s*` + lim.name + `\s*\|\s*(\d+)\s*\|`).FindStringSubmatch(limits)
		if got == nil || got[1] != strconv.Itoa(lim.impl) {
			t.Errorf("spec %s = %v, implementation %d", lim.name, got, lim.impl)
		}
	}
}

func TestSpecOpcodes(t *testing.T) {
	codes := tableCodes(specSection(t, specDoc(t), "### Request opcodes"))
	want := []Op{OpGet, OpSet, OpDel, OpStats, OpRehash, OpKeys, OpMembers, OpTopology, OpMetrics, OpGetLease, OpHint}
	if len(codes) != len(want) {
		t.Errorf("spec lists %d opcodes, implementation has %d", len(codes), len(want))
	}
	for _, op := range want {
		if got, ok := codes[op.String()]; !ok || got != int(op) {
			t.Errorf("spec %s = %d (listed=%v), implementation %d", op, got, ok, int(op))
		}
	}
}

func TestSpecStatuses(t *testing.T) {
	codes := tableCodes(specSection(t, specDoc(t), "### Response statuses"))
	want := []Status{StatusHit, StatusMiss, StatusOK, StatusStats, StatusError, StatusKeys, StatusMembers, StatusVersionStale, StatusMetrics, StatusLease, StatusLeaseLost}
	if len(codes) != len(want) {
		t.Errorf("spec lists %d statuses, implementation has %d", len(codes), len(want))
	}
	for _, st := range want {
		if got, ok := codes[st.String()]; !ok || got != int(st) {
			t.Errorf("spec %s = %d (listed=%v), implementation %d", st, got, ok, int(st))
		}
	}
}

func TestSpecSetFlags(t *testing.T) {
	section := specSection(t, specDoc(t), "### SET flag bits")
	for _, f := range []struct {
		name string
		impl SetFlags
	}{
		{"REPAIR", SetFlagRepair},
		{"ASYNC", SetFlagAsync},
		{"VERSIONED", SetFlagVersioned},
		{"LEASE", SetFlagLease},
		{"TOMBSTONE", SetFlagTombstone},
	} {
		row := regexp.MustCompile(`\|\s*` + f.name + `\s*\|\s*0x([0-9a-fA-F]+)\s*\|`).FindStringSubmatch(section)
		if row == nil {
			t.Fatalf("spec lacks the %s flag row", f.name)
		}
		bit, err := strconv.ParseUint(row[1], 16, 8)
		if err != nil || SetFlags(bit) != f.impl {
			t.Errorf("spec %s = 0x%s, implementation %#02x", f.name, row[1], byte(f.impl))
		}
	}
	// Every defined flag must be documented: if a new bit joins
	// setFlagsDefined, this forces a spec row for it.
	if setFlagsDefined != SetFlagRepair|SetFlagAsync|SetFlagVersioned|SetFlagLease|SetFlagTombstone {
		t.Error("setFlagsDefined grew; document the new flag bit in ARCHITECTURE.md and extend this test")
	}
}

// TestSpecTombstones pins the v8 normative text: the DEL-as-versioned-
// write semantics, the 17-byte KEYS record layout, the HINT request
// body, the TOMBSTONE flag's combination rule, and the deletion
// invariant section the whole layer rests on.
func TestSpecTombstones(t *testing.T) {
	doc := specDoc(t)

	ops := specSection(t, doc, "### Request opcodes")
	if !regexp.MustCompile(`HINT\s*\|\s*11\s*\|\s*target-len byte, target bytes, key uint64, tombstone byte \(0 or 1\), version uint64, value bytes`).MatchString(ops) {
		t.Error("spec HINT row must document the full hint body layout")
	}
	if !regexp.MustCompile(`(?is)DEL.*?since v8.*?versioned write, not an erasure`).MatchString(ops) {
		t.Error("spec must state that DEL is a versioned write since v8")
	}
	if !regexp.MustCompile(`(?i)zero version is a protocol error`).MatchString(ops) {
		t.Error("spec must state that a zero-version HINT is a protocol error")
	}

	statuses := specSection(t, doc, "### Response statuses")
	if !regexp.MustCompile(`(?is)DEL.*?always answers OK.*?tombstone's freshly assigned version`).MatchString(statuses) {
		t.Error("spec DEL note must state the always-OK response carrying the tombstone version")
	}
	if !regexp.MustCompile(`key uint64, version uint64, tombstone byte \(17 bytes each\)`).MatchString(statuses) {
		t.Error("spec KEYS row must document the 17-byte record layout")
	}

	flags := specSection(t, doc, "### SET flag bits")
	if !regexp.MustCompile(`(?i)only valid together with VERSIONED`).MatchString(flags) {
		t.Error("spec must state TOMBSTONE is only valid together with VERSIONED")
	}
	if !regexp.MustCompile(`(?i)TOMBSTONE SET carrying a value`).MatchString(flags) {
		t.Error("spec must state that a TOMBSTONE SET carrying a value is rejected")
	}

	inv := specSection(t, doc, "### Deletion invariant")
	for _, sentence := range []string{
		`(?i)maintenance write can never resurrect a deleted key`,
		`(?i)delete propagates like a write`,
		`(?i)lease path cannot resurrect`,
		`(?i)tombstones are transient`,
		`(?i)bounded by the anti-entropy period`,
	} {
		if !regexp.MustCompile(sentence).MatchString(inv) {
			t.Errorf("spec deletion invariant section must match %q", sentence)
		}
	}
}

// TestSpecVersionedWrites pins the v4 normative sentences: the SET request
// row documents the conditional version field, HIT responses carry the
// stored version, and VERSION_STALE replies with the winning version.
func TestSpecVersionedWrites(t *testing.T) {
	doc := specDoc(t)
	ops := specSection(t, doc, "### Request opcodes")
	if !regexp.MustCompile(`SET\s*\|\s*2\s*\|\s*key uint64, flags byte, \[version uint64\], \[token uint64\], value bytes`).MatchString(ops) {
		t.Error("spec SET row must document the conditional version and token fields: key, flags, [version], [token], value")
	}
	if !regexp.MustCompile(`(?i)version field is present exactly when the flags carry VERSIONED`).MatchString(ops) {
		t.Error("spec must state when the SET version field is present")
	}
	statuses := specSection(t, doc, "### Response statuses")
	if !regexp.MustCompile(`HIT\s*\|\s*1\s*\|\s*version uint64, value bytes`).MatchString(statuses) {
		t.Error("spec HIT row must document the leading version field")
	}
	if !regexp.MustCompile(`(?is)VERSION_STALE.*?not strictly newer`).MatchString(statuses) {
		t.Error("spec must state VERSION_STALE's strictly-newer rejection rule")
	}
}

// TestSpecTopologyPayload pins the topology payload table: field order and
// types must match the encoder (epoch uint64, count uint32, then repeated
// uint16-length-prefixed addresses).
func TestSpecTopologyPayload(t *testing.T) {
	section := specSection(t, specDoc(t), "### Topology payload")
	rows := regexp.MustCompile(`(?m)^\|\s*(\w+)\s*\|\s*(\w+)\s*\|`).FindAllStringSubmatch(section, -1)
	var fields []string
	for _, r := range rows {
		if r[1] == "field" {
			continue // header row
		}
		fields = append(fields, r[1]+":"+r[2])
	}
	want := []string{"Epoch:uint64", "Count:uint32", "AddrLen:uint16", "Addr:bytes"}
	if len(fields) != len(want) {
		t.Fatalf("spec topology payload lists %v, want %v", fields, want)
	}
	for i := range want {
		if fields[i] != want[i] {
			t.Errorf("spec topology payload field %d = %q, want %q", i+1, fields[i], want[i])
		}
	}
}

// TestSpecEpochInResponses pins the normative sentence that every response
// carries the topology epoch between status byte and fields — the
// staleness piggyback clients rely on.
func TestSpecEpochInResponses(t *testing.T) {
	section := specSection(t, specDoc(t), "### Response statuses")
	if !regexp.MustCompile(`(?i)every.*response.*epoch|epoch.*every.*response`).MatchString(section) {
		t.Error("spec response-status section must state that every response carries the topology epoch")
	}
	if !strings.Contains(section, "terminated by a KEYS frame with count 0") {
		t.Error("spec must document the KEYS stream terminator (a KEYS frame with count 0)")
	}
}

// TestSpecMetricsFlags pins the METRICS detail-flag bits against the
// implementation, the same way TestSpecSetFlags pins the SET bits.
func TestSpecMetricsFlags(t *testing.T) {
	section := specSection(t, specDoc(t), "### METRICS detail flags")
	for _, f := range []struct {
		name string
		impl MetricsFlags
	}{
		{"HISTOGRAMS", MetricsHistograms},
		{"COUNTERS", MetricsCounters},
		{"SLOW_OPS", MetricsSlowOps},
		{"TRACES", MetricsTraces},
		{"HOTKEYS", MetricsHotKeys},
	} {
		row := regexp.MustCompile(`\|\s*` + f.name + `\s*\|\s*0x([0-9a-fA-F]+)\s*\|`).FindStringSubmatch(section)
		if row == nil {
			t.Fatalf("spec lacks the %s flag row", f.name)
		}
		bit, err := strconv.ParseUint(row[1], 16, 8)
		if err != nil || MetricsFlags(bit) != f.impl {
			t.Errorf("spec %s = 0x%s, implementation %#02x", f.name, row[1], byte(f.impl))
		}
	}
	if metricsFlagsDefined != MetricsHistograms|MetricsCounters|MetricsSlowOps|MetricsTraces|MetricsHotKeys {
		t.Error("metricsFlagsDefined grew; document the new flag bit in ARCHITECTURE.md and extend this test")
	}
}

// TestSpecMetricsPayload pins the METRICS payload section: histogram and
// counter ID codes, the bucket-count bound stated for the sparse encoding,
// the slow-op record field order, and the MaxSlowOps cap.
func TestSpecMetricsPayload(t *testing.T) {
	section := specSection(t, specDoc(t), "### METRICS payload")

	// The stated bucket bound must be telemetry's NumBuckets.
	if !strings.Contains(section, strconv.Itoa(telemetry.NumBuckets)+" buckets total") {
		t.Errorf("spec must state the %d-bucket total of the log-linear scheme", telemetry.NumBuckets)
	}
	if !strings.Contains(section, "1/"+strconv.Itoa(telemetry.SubBuckets)+" relative error") {
		t.Errorf("spec must state the 1/%d quantile error bound", telemetry.SubBuckets)
	}

	codes := tableCodes(section)
	for _, id := range []struct {
		name string
		impl byte
	}{
		{"REPAIR_WAIT", HistRepairWait},
		{"BYTES_IN", CounterBytesIn},
		{"BYTES_OUT", CounterBytesOut},
		{"SLOW_OPS", CounterSlowOps},
		{"CONNS", CounterConns},
	} {
		if got, ok := codes[id.name]; !ok || got != int(id.impl) {
			t.Errorf("spec %s = %d (listed=%v), implementation %d", id.name, got, ok, id.impl)
		}
	}

	if !regexp.MustCompile(`MaxSlowOps\s*=\s*` + strconv.Itoa(MaxSlowOps)).MatchString(section) {
		t.Errorf("spec must state MaxSlowOps = %d", MaxSlowOps)
	}
	if !regexp.MustCompile(`MaxSpans\s*=\s*` + strconv.Itoa(MaxSpans)).MatchString(section) {
		t.Errorf("spec must state MaxSpans = %d", MaxSpans)
	}
	if !regexp.MustCompile(`MaxHotKeys\s*=\s*` + strconv.Itoa(MaxHotKeys)).MatchString(section) {
		t.Errorf("spec must state MaxHotKeys = %d", MaxHotKeys)
	}

	// Slow-op record field order, matched against the table rows after
	// SlowOpCount.
	rows := regexp.MustCompile(`(?m)^\|\s*(\w+)\s*\|\s*(\w+)\s*\|\s*per record`).FindAllStringSubmatch(section, -1)
	var fields []string
	for _, r := range rows {
		fields = append(fields, r[1]+":"+r[2])
	}
	want := []string{"Op:byte", "KeyHash:uint64", "DurationNanos:uint64", "Version:uint64", "UnixNanos:uint64", "TraceID:bytes"}
	if len(fields) != len(want) {
		t.Fatalf("spec slow-op record lists %v, want %v", fields, want)
	}
	for i := range want {
		if fields[i] != want[i] {
			t.Errorf("spec slow-op record field %d = %q, want %q", i+1, fields[i], want[i])
		}
	}

	// Per-op histogram IDs are the opcode bytes; the spec states the range.
	if !regexp.MustCompile(`GET\s*=\s*1\s*…\s*GETL\s*=\s*10`).MatchString(section) {
		t.Errorf("spec must state per-op histogram IDs GET = 1 … GETL = %d", byte(OpGetLease))
	}

	// Span record field order (rows marked "per span").
	spanRows := regexp.MustCompile(`(?m)^\|\s*(\w+)\s*\|\s*\[?\d*\]?(\w+)\s*\|\s*per span`).FindAllStringSubmatch(section, -1)
	fields = fields[:0]
	for _, r := range spanRows {
		fields = append(fields, r[1]+":"+r[2])
	}
	want = []string{"Op:byte", "Status:byte", "TraceID:byte", "KeyHash:uint64", "QueueWaitNanos:uint64", "DurationNanos:uint64", "UnixNanos:uint64"}
	if len(fields) != len(want) {
		t.Fatalf("spec span record lists %v, want %v", fields, want)
	}
	for i := range want {
		if fields[i] != want[i] {
			t.Errorf("spec span record field %d = %q, want %q", i+1, fields[i], want[i])
		}
	}

	// Hot-key entry field order (rows marked "per entry") and class IDs.
	entryRows := regexp.MustCompile(`(?m)^\|\s*(\w+)\s*\|\s*(\w+)\s*\|\s*per entry`).FindAllStringSubmatch(section, -1)
	fields = fields[:0]
	for _, r := range entryRows {
		fields = append(fields, r[1]+":"+r[2])
	}
	want = []string{"Key:uint64", "Count:uint64", "Err:uint64"}
	if len(fields) != len(want) {
		t.Fatalf("spec hot-key entry lists %v, want %v", fields, want)
	}
	for i := range want {
		if fields[i] != want[i] {
			t.Errorf("spec hot-key entry field %d = %q, want %q", i+1, fields[i], want[i])
		}
	}
	for _, hc := range []byte{HotGet, HotSet, HotDel, HotEvict} {
		if got, ok := codes[HotClassName(hc)]; !ok || got != int(hc) {
			t.Errorf("spec hot-key class %s = %d (listed=%v), implementation %d", HotClassName(hc), got, ok, hc)
		}
	}
	if !regexp.MustCompile(`(?i)count descending,?\s*key ascending`).MatchString(section) {
		t.Error("spec must state the canonical hot-key entry order: Count descending, Key ascending")
	}
}

// TestSpecTraceContext pins the v6 trace-context layout: the TRACED
// opcode bit, the context length, and the SAMPLED trace flag.
func TestSpecTraceContext(t *testing.T) {
	section := specSection(t, specDoc(t), "### Trace context")

	row := regexp.MustCompile(`\|\s*TRACED\s*\|\s*0x([0-9a-fA-F]+)\s*\|`).FindStringSubmatch(section)
	if row == nil {
		t.Fatal("spec lacks the TRACED opcode-bit row")
	}
	if bit, err := strconv.ParseUint(row[1], 16, 8); err != nil || byte(bit) != OpFlagTraced {
		t.Errorf("spec TRACED = 0x%s, implementation %#02x", row[1], OpFlagTraced)
	}

	row = regexp.MustCompile(`\|\s*SAMPLED\s*\|\s*0x([0-9a-fA-F]+)\s*\|`).FindStringSubmatch(section)
	if row == nil {
		t.Fatal("spec lacks the SAMPLED trace-flag row")
	}
	if bit, err := strconv.ParseUint(row[1], 16, 8); err != nil || TraceFlags(bit) != TraceFlagSampled {
		t.Errorf("spec SAMPLED = 0x%s, implementation %#02x", row[1], byte(TraceFlagSampled))
	}
	if traceFlagsDefined != TraceFlagSampled {
		t.Error("traceFlagsDefined grew; document the new flag bit in ARCHITECTURE.md and extend this test")
	}

	// The context is TraceID [16]byte + TraceFlags byte = 17 bytes; the
	// spec states the length and both fields.
	if !strings.Contains(section, strconv.Itoa(TraceContextLen)+"-byte") {
		t.Errorf("spec must state the %d-byte trace-context length", TraceContextLen)
	}
	if !regexp.MustCompile(`\|\s*TraceID\s*\|\s*\[16\]byte\s*\|`).MatchString(section) {
		t.Error("spec must list the TraceID [16]byte field")
	}
	if !regexp.MustCompile(`\|\s*TraceFlags\s*\|\s*byte\s*\|`).MatchString(section) {
		t.Error("spec must list the TraceFlags byte field")
	}
	if !regexp.MustCompile(`(?i)all-zero is a protocol error`).MatchString(section) {
		t.Error("spec must state that an all-zero trace ID is a protocol error")
	}
}

func TestSpecStatsPayload(t *testing.T) {
	section := specSection(t, specDoc(t), "### STATS payload")
	rows := regexp.MustCompile(`(?m)^\|\s*(\d+)\s*\|\s*(\w+)\s*\|\s*(\w+)\s*\|`).FindAllStringSubmatch(section, -1)
	var fields []string
	var fixedLen int
	for _, r := range rows {
		name, typ := r[2], r[3]
		switch typ {
		case "uint64":
			fixedLen += 8
		case "byte":
			fixedLen++
		case "uint32":
			// ShardCount follows the fixed region.
		default:
			t.Fatalf("spec STATS row %v has unexpected type %q", r, typ)
		}
		if typ == "uint64" {
			fields = append(fields, name)
		}
	}
	if len(fields) != len(statsFields) {
		t.Fatalf("spec lists %d fixed counters, implementation has %d", len(fields), len(statsFields))
	}
	for i, f := range statsFields {
		if fields[i] != f.name {
			t.Errorf("spec STATS field %d = %q, implementation %q", i+1, fields[i], f.name)
		}
	}
	if fixedLen != statsFixedLen {
		t.Errorf("spec fixed region = %d bytes, implementation statsFixedLen = %d", fixedLen, statsFixedLen)
	}
	if !strings.Contains(section, "ShardCount") || !strings.Contains(section, "Migrating") {
		t.Error("spec STATS payload must document Migrating and ShardCount")
	}
}

// TestSpecLeasePayload pins the v7 lease protocol's normative text: the
// lease payload table (field order and types), the token/stale exclusion
// rule, the fixed 13-byte bare length, the LEASE_LOST body, and the
// lease invariant section the conditional fill rests on.
func TestSpecLeasePayload(t *testing.T) {
	doc := specDoc(t)
	section := specSection(t, doc, "### Lease payload")

	rows := regexp.MustCompile(`(?m)^\|\s*(\w+)\s*\|\s*(\w+)\s*\|`).FindAllStringSubmatch(section, -1)
	var fields []string
	for _, r := range rows {
		if r[1] == "field" {
			continue // header row
		}
		fields = append(fields, r[1]+":"+r[2])
	}
	want := []string{"Token:uint64", "TTLms:uint32", "Stale:byte", "Version:uint64", "Value:bytes"}
	if len(fields) != len(want) {
		t.Fatalf("spec lease payload lists %v, want %v", fields, want)
	}
	for i := range want {
		if fields[i] != want[i] {
			t.Errorf("spec lease payload field %d = %q, want %q", i+1, fields[i], want[i])
		}
	}
	if !regexp.MustCompile(`(?i)nonzero Token never travels with Stale\s*=\s*1`).MatchString(section) {
		t.Error("spec must state the grant/stale exclusion: a nonzero token never travels with a stale copy")
	}
	if !regexp.MustCompile(`(?i)exactly 13 bytes after the epoch`).MatchString(section) {
		t.Error("spec must state the fixed 13-byte length of a bare (Stale = 0) lease payload")
	}

	statuses := specSection(t, doc, "### Response statuses")
	if !regexp.MustCompile(`LEASE_LOST\s*\|\s*11\s*\|\s*winning version uint64 \(0 = unknown\)`).MatchString(statuses) {
		t.Error("spec LEASE_LOST row must document the winning-version body with 0 = unknown")
	}
	if !regexp.MustCompile(`(?is)LEASE SET\s+carrying a zero token, is rejected`).MatchString(specSection(t, doc, "### Request opcodes")) {
		t.Error("spec must state that a LEASE SET with a zero token is rejected")
	}

	inv := specSection(t, doc, "### Lease invariant")
	for _, sentence := range []string{
		`(?i)granted \*\*only on a miss\*\*`,
		`(?i)only while.*?token is still the key's\s+outstanding lease`,
		`(?i)no versioned value`,
		`(?is)one fill lands per lease`,
		`(?i)DEL drops the key's lease entry`,
	} {
		if !regexp.MustCompile(sentence).MatchString(inv) {
			t.Errorf("spec lease invariant section must match %q", sentence)
		}
	}
}
