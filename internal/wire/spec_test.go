package wire

import (
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// These tests pin the wire-protocol specification in ARCHITECTURE.md to the
// implementation: every constant the document states — magic, version,
// frame cap, opcode and status codes, SET flag bits, and the STATS payload
// field order — is parsed out of the markdown tables and compared against
// the package. Charge the spec, forget the code (or vice versa), and CI
// fails.

// specDoc loads ARCHITECTURE.md from the repository root.
func specDoc(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile("../../ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("the wire spec lives in ARCHITECTURE.md and must exist: %v", err)
	}
	return string(b)
}

// specSection returns the part of doc between the heading containing
// marker and the next heading of the same or higher level.
func specSection(t *testing.T, doc, marker string) string {
	t.Helper()
	idx := strings.Index(doc, marker)
	if idx < 0 {
		t.Fatalf("ARCHITECTURE.md lacks the %q section", marker)
	}
	rest := doc[idx:]
	if end := strings.Index(rest[1:], "\n#"); end >= 0 {
		return rest[:end+1]
	}
	return rest
}

// tableCodes extracts |NAME|number| rows from a markdown section.
func tableCodes(section string) map[string]int {
	rows := regexp.MustCompile(`(?m)^\|\s*([A-Z]+)\s*\|\s*(\d+)\s*\|`).FindAllStringSubmatch(section, -1)
	out := make(map[string]int, len(rows))
	for _, r := range rows {
		n, _ := strconv.Atoi(r[2])
		out[r[1]] = n
	}
	return out
}

func TestSpecPreambleAndLimits(t *testing.T) {
	doc := specDoc(t)

	pre := specSection(t, doc, "### Preamble")
	magic := regexp.MustCompile(`\|\s*magic\s*\|\s*\[4\]byte\s*\|\s*"([A-Z]+)"`).FindStringSubmatch(pre)
	if magic == nil || magic[1] != Magic {
		t.Errorf("spec magic = %v, implementation %q", magic, Magic)
	}
	version := regexp.MustCompile(`\|\s*version\s*\|\s*uint32\s*\|\s*(\d+)`).FindStringSubmatch(pre)
	if version == nil || version[1] != strconv.Itoa(Version) {
		t.Errorf("spec version = %v, implementation %d", version, Version)
	}

	limits := specSection(t, doc, "### Limits")
	maxFrame := regexp.MustCompile(`\|\s*MaxFrame\s*\|\s*(\d+)\s*\|`).FindStringSubmatch(limits)
	if maxFrame == nil || maxFrame[1] != strconv.Itoa(MaxFrame) {
		t.Errorf("spec MaxFrame = %v, implementation %d", maxFrame, MaxFrame)
	}
}

func TestSpecOpcodes(t *testing.T) {
	codes := tableCodes(specSection(t, specDoc(t), "### Request opcodes"))
	want := []Op{OpGet, OpSet, OpDel, OpStats, OpRehash, OpKeys}
	if len(codes) != len(want) {
		t.Errorf("spec lists %d opcodes, implementation has %d", len(codes), len(want))
	}
	for _, op := range want {
		if got, ok := codes[op.String()]; !ok || got != int(op) {
			t.Errorf("spec %s = %d (listed=%v), implementation %d", op, got, ok, int(op))
		}
	}
}

func TestSpecStatuses(t *testing.T) {
	codes := tableCodes(specSection(t, specDoc(t), "### Response statuses"))
	want := []Status{StatusHit, StatusMiss, StatusOK, StatusStats, StatusError, StatusKeys}
	if len(codes) != len(want) {
		t.Errorf("spec lists %d statuses, implementation has %d", len(codes), len(want))
	}
	for _, st := range want {
		if got, ok := codes[st.String()]; !ok || got != int(st) {
			t.Errorf("spec %s = %d (listed=%v), implementation %d", st, got, ok, int(st))
		}
	}
}

func TestSpecSetFlags(t *testing.T) {
	section := specSection(t, specDoc(t), "### SET flag bits")
	repair := regexp.MustCompile(`\|\s*REPAIR\s*\|\s*0x([0-9a-fA-F]+)\s*\|`).FindStringSubmatch(section)
	if repair == nil {
		t.Fatal("spec lacks the REPAIR flag row")
	}
	bit, err := strconv.ParseUint(repair[1], 16, 8)
	if err != nil || SetFlags(bit) != SetFlagRepair {
		t.Errorf("spec REPAIR = 0x%s, implementation %#02x", repair[1], byte(SetFlagRepair))
	}
	// Every defined flag must be documented: if a new bit joins
	// setFlagsDefined, this forces a spec row for it.
	if setFlagsDefined != SetFlagRepair {
		t.Error("setFlagsDefined grew; document the new flag bit in ARCHITECTURE.md and extend this test")
	}
}

func TestSpecStatsPayload(t *testing.T) {
	section := specSection(t, specDoc(t), "### STATS payload")
	rows := regexp.MustCompile(`(?m)^\|\s*(\d+)\s*\|\s*(\w+)\s*\|\s*(\w+)\s*\|`).FindAllStringSubmatch(section, -1)
	var fields []string
	var fixedLen int
	for _, r := range rows {
		name, typ := r[2], r[3]
		switch typ {
		case "uint64":
			fixedLen += 8
		case "byte":
			fixedLen++
		case "uint32":
			// ShardCount follows the fixed region.
		default:
			t.Fatalf("spec STATS row %v has unexpected type %q", r, typ)
		}
		if typ == "uint64" {
			fields = append(fields, name)
		}
	}
	if len(fields) != len(statsFields) {
		t.Fatalf("spec lists %d fixed counters, implementation has %d", len(fields), len(statsFields))
	}
	for i, f := range statsFields {
		if fields[i] != f.name {
			t.Errorf("spec STATS field %d = %q, implementation %q", i+1, fields[i], f.name)
		}
	}
	if fixedLen != statsFixedLen {
		t.Errorf("spec fixed region = %d bytes, implementation statsFixedLen = %d", fixedLen, statsFixedLen)
	}
	if !strings.Contains(section, "ShardCount") || !strings.Contains(section, "Migrating") {
		t.Error("spec STATS payload must document Migrating and ShardCount")
	}
}
