package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func sampleMetrics() *Metrics {
	var get, set, wait telemetry.Histogram
	for i := 0; i < 1000; i++ {
		get.Record(time.Duration(i) * time.Microsecond)
	}
	set.Record(3 * time.Millisecond)
	wait.Record(40 * time.Microsecond)
	wait.Record(90 * time.Second) // extreme octave must survive the trip
	return &Metrics{
		Flags: MetricsAll,
		Hists: []OpHist{
			{ID: byte(OpGet), Snap: get.Snapshot()},
			{ID: byte(OpSet), Snap: set.Snapshot()},
			{ID: HistRepairWait, Snap: wait.Snapshot()},
		},
		Counters: []MetricCounter{
			{ID: CounterBytesIn, Value: 1 << 40},
			{ID: CounterBytesOut, Value: 77},
			{ID: CounterSlowOps, Value: 2},
			{ID: CounterConns, Value: 9},
		},
		SlowOps: []telemetry.SlowOp{
			{Op: byte(OpGet), KeyHash: telemetry.HashKey(42), DurationNanos: 5e6, Version: 3, UnixNanos: 1700000000e9, TraceID: testTraceID(9)},
			{Op: byte(OpSet), KeyHash: telemetry.HashKey(7), DurationNanos: 9e6, Version: 8, UnixNanos: 1700000001e9}, // untraced: zero ID
		},
		Spans: []telemetry.Span{
			{Op: byte(OpGet), Status: byte(StatusHit), TraceID: testTraceID(9), KeyHash: telemetry.HashKey(42), DurationNanos: 5e6, UnixNanos: 1700000000e9},
			{Op: byte(OpSet), Status: byte(StatusOK), TraceID: testTraceID(9), KeyHash: telemetry.HashKey(42), QueueWaitNanos: 2e9, DurationNanos: 1e3, UnixNanos: 1700000002e9},
		},
		HotKeys: []HotKeyClass{
			{Class: HotGet, Keys: telemetry.TopKSnapshot{
				{Key: telemetry.HashKey(42), Count: 900, Err: 3},
				{Key: telemetry.HashKey(7), Count: 100, Err: 3},
			}},
			{Class: HotEvict, Keys: telemetry.TopKSnapshot{
				{Key: telemetry.HashKey(7), Count: 12, Err: 0},
			}},
		},
	}
}

// TestMetricsRoundTrip pins the METRICS request and response encodings:
// what the server writes is exactly what the client decodes, including
// empty sections and sparse histograms.
func TestMetricsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	reqs := []Request{
		{Op: OpMetrics, MetricsFlags: MetricsAll},
		{Op: OpMetrics, MetricsFlags: MetricsHistograms},
		{Op: OpMetrics, MetricsFlags: MetricsCounters | MetricsSlowOps},
	}
	for _, req := range reqs {
		if err := w.WriteRequest(req); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range reqs {
		got, err := r.ReadRequest()
		if err != nil {
			t.Fatalf("read request %d: %v", i, err)
		}
		if got.Op != OpMetrics || got.MetricsFlags != want.MetricsFlags {
			t.Fatalf("request %d = %+v, want %+v", i, got, want)
		}
	}

	resps := []Response{
		{Status: StatusMetrics, Epoch: 5, Metrics: sampleMetrics()},
		{Status: StatusMetrics, Epoch: 6, Metrics: &Metrics{Flags: MetricsHistograms}},                                  // zero histograms
		{Status: StatusMetrics, Epoch: 7, Metrics: &Metrics{Flags: MetricsCounters}},                                    // zero counters
		{Status: StatusMetrics, Epoch: 8, Metrics: &Metrics{Flags: MetricsSlowOps}},                                     // empty ring
		{Status: StatusMetrics, Epoch: 9, Metrics: &Metrics{Flags: MetricsAll, Hists: []OpHist{{ID: byte(OpMetrics)}}}}, // empty histogram
	}
	buf.Reset()
	for _, resp := range resps {
		if err := w.WriteResponse(resp); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, want := range resps {
		got, err := r.ReadResponse()
		if err != nil {
			t.Fatalf("read response %d: %v", i, err)
		}
		if got.Status != StatusMetrics || got.Epoch != want.Epoch || got.Metrics == nil {
			t.Fatalf("response %d = %+v", i, got)
		}
		if got.Metrics.Flags != want.Metrics.Flags {
			t.Fatalf("response %d flags = %v, want %v", i, got.Metrics.Flags, want.Metrics.Flags)
		}
		// Sections must round-trip exactly, modulo nil-vs-empty slices.
		if len(got.Metrics.Hists) != len(want.Metrics.Hists) {
			t.Fatalf("response %d has %d hists, want %d", i, len(got.Metrics.Hists), len(want.Metrics.Hists))
		}
		for j := range want.Metrics.Hists {
			if got.Metrics.Hists[j] != want.Metrics.Hists[j] {
				t.Fatalf("response %d hist %d differs", i, j)
			}
		}
		if len(got.Metrics.Counters) != 0 || len(want.Metrics.Counters) != 0 {
			if !reflect.DeepEqual(got.Metrics.Counters, want.Metrics.Counters) {
				t.Fatalf("response %d counters = %+v, want %+v", i, got.Metrics.Counters, want.Metrics.Counters)
			}
		}
		if len(got.Metrics.SlowOps) != 0 || len(want.Metrics.SlowOps) != 0 {
			if !reflect.DeepEqual(got.Metrics.SlowOps, want.Metrics.SlowOps) {
				t.Fatalf("response %d slow ops = %+v, want %+v", i, got.Metrics.SlowOps, want.Metrics.SlowOps)
			}
		}
		if len(got.Metrics.Spans) != 0 || len(want.Metrics.Spans) != 0 {
			if !reflect.DeepEqual(got.Metrics.Spans, want.Metrics.Spans) {
				t.Fatalf("response %d spans = %+v, want %+v", i, got.Metrics.Spans, want.Metrics.Spans)
			}
		}
		if len(got.Metrics.HotKeys) != 0 || len(want.Metrics.HotKeys) != 0 {
			if !reflect.DeepEqual(got.Metrics.HotKeys, want.Metrics.HotKeys) {
				t.Fatalf("response %d hot keys = %+v, want %+v", i, got.Metrics.HotKeys, want.Metrics.HotKeys)
			}
		}
	}

	// Accessors on the full payload.
	m := sampleMetrics()
	if m.Hist(byte(OpGet)) == nil || m.Hist(HistRepairWait) == nil || m.Hist(byte(OpDel)) != nil {
		t.Error("Hist accessor wrong")
	}
	if m.Counter(CounterBytesIn) != 1<<40 || m.Counter(250) != 0 {
		t.Error("Counter accessor wrong")
	}
	if m.HotClass(HotGet) == nil || m.HotClass(HotEvict) == nil || m.HotClass(HotDel) != nil {
		t.Error("HotClass accessor wrong")
	}
}

// TestMetricsRequestRejected pins the request-side validation rules.
func TestMetricsRequestRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRequest(Request{Op: OpMetrics}); err == nil {
		t.Error("METRICS request selecting no section accepted by encoder")
	}
	if err := w.WriteRequest(Request{Op: OpMetrics, MetricsFlags: 0x80}); err == nil {
		t.Error("METRICS request with undefined flag bits accepted by encoder")
	}

	frame := func(body []byte) *Reader {
		var b bytes.Buffer
		var ln [4]byte
		binary.LittleEndian.PutUint32(ln[:], uint32(len(body)))
		b.Write(ln[:])
		b.Write(body)
		return NewReader(&b)
	}
	if _, err := frame([]byte{byte(OpMetrics)}).ReadRequest(); err == nil {
		t.Error("METRICS request without the flag byte accepted")
	}
	if _, err := frame([]byte{byte(OpMetrics), 0}).ReadRequest(); err == nil {
		t.Error("METRICS request selecting no section accepted")
	}
	if _, err := frame([]byte{byte(OpMetrics), 0x21}).ReadRequest(); err == nil {
		t.Error("METRICS request with undefined flag bits accepted")
	}
	if _, err := frame([]byte{byte(OpMetrics), byte(MetricsAll), 0}).ReadRequest(); err == nil {
		t.Error("METRICS request with trailing bytes accepted")
	}
}

// TestMetricsPayloadRejected pins the decoder against malformed response
// payloads: every structural rule broken one at a time, starting from a
// valid frame.
func TestMetricsPayloadRejected(t *testing.T) {
	encode := func(m *Metrics) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteResponse(Response{Status: StatusMetrics, Epoch: 1, Metrics: m}); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	reject := func(name string, raw []byte) {
		t.Helper()
		if _, err := NewReader(bytes.NewReader(raw)).ReadResponse(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Offsets into the frame: len(4) status(1) epoch(8) flags(1) ...
	const payload = 4 + 1 + 8

	raw := encode(sampleMetrics())
	mut := append([]byte(nil), raw...)
	mut[payload] = 0
	reject("flags byte zero", mut)

	mut = append([]byte(nil), raw...)
	mut[payload] = 0xFF
	reject("undefined flag bits", mut)

	mut = append(append([]byte(nil), raw...), 0xAA)
	binary.LittleEndian.PutUint32(mut, binary.LittleEndian.Uint32(mut)+1)
	reject("trailing bytes", mut)

	reject("truncated histogram section", raw[:payload+3])

	// Histogram with an undefined ID: hist section starts at payload+1
	// (count uint32), first hist ID right after.
	mut = append([]byte(nil), raw...)
	mut[payload+1+4] = 200
	reject("undefined histogram ID", mut)

	// Non-ascending hist IDs: make the second hist repeat the first's ID.
	m := sampleMetrics()
	m.Hists[1].ID = m.Hists[0].ID
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteResponse(Response{Status: StatusMetrics, Metrics: m}); err == nil {
		w.Flush()
		reject("non-ascending histogram IDs", buf.Bytes())
	}

	// Out-of-range bucket index: first hist's first bucket pair sits after
	// id(1)+sum(8)+nbuckets(4).
	mut = append([]byte(nil), raw...)
	binary.LittleEndian.PutUint16(mut[payload+1+4+13:], telemetry.NumBuckets)
	reject("bucket index out of range", mut)

	// Zero-count bucket.
	mut = append([]byte(nil), raw...)
	binary.LittleEndian.PutUint64(mut[payload+1+4+13+2:], 0)
	reject("zero-count bucket", mut)

	// Non-ascending bucket indices: copy pair 1's index over pair 2's.
	mut = append([]byte(nil), raw...)
	first := binary.LittleEndian.Uint16(mut[payload+1+4+13:])
	binary.LittleEndian.PutUint16(mut[payload+1+4+13+10:], first)
	reject("non-ascending bucket indices", mut)

	// Undefined counter ID, reached via a counters-only payload.
	rawC := encode(&Metrics{Flags: MetricsCounters, Counters: []MetricCounter{{ID: CounterBytesIn, Value: 1}}})
	mut = append([]byte(nil), rawC...)
	mut[payload+1+4] = 99
	reject("undefined counter ID", mut)

	// Slow-op count larger than the delivered records.
	rawS := encode(&Metrics{Flags: MetricsSlowOps, SlowOps: []telemetry.SlowOp{{Op: 1}}})
	mut = append([]byte(nil), rawS...)
	binary.LittleEndian.PutUint32(mut[payload+1:], 2)
	// The frame length no longer matches; fix it so only the section count lies.
	reject("truncated slow-op records", mut)

	// Slow-op count over MaxSlowOps.
	mut = append([]byte(nil), rawS...)
	binary.LittleEndian.PutUint32(mut[payload+1:], MaxSlowOps+1)
	reject("slow-op count over MaxSlowOps", mut)

	// Encoder must refuse an oversized ring outright.
	if _, err := appendMetrics(nil, &Metrics{Flags: MetricsSlowOps, SlowOps: make([]telemetry.SlowOp, MaxSlowOps+1)}); err == nil {
		t.Error("encoder accepted an oversize slow-op section")
	}

	// TRACES: a span record must carry a non-zero trace ID. Spans-only
	// payload: count uint32 at payload+1, first record right after; the
	// trace ID sits at record offset 2 (op 1 + status 1).
	rawT := encode(&Metrics{Flags: MetricsTraces, Spans: []telemetry.Span{{Op: 1, TraceID: testTraceID(1)}}})
	mut = append([]byte(nil), rawT...)
	for i := 0; i < 16; i++ {
		mut[payload+1+4+2+i] = 0
	}
	reject("zero span trace ID", mut)

	// Span count larger than the delivered records.
	mut = append([]byte(nil), rawT...)
	binary.LittleEndian.PutUint32(mut[payload+1:], 2)
	reject("truncated span records", mut)

	// Span count over MaxSpans.
	mut = append([]byte(nil), rawT...)
	binary.LittleEndian.PutUint32(mut[payload+1:], MaxSpans+1)
	reject("span count over MaxSpans", mut)

	if _, err := appendMetrics(nil, &Metrics{Flags: MetricsTraces, Spans: make([]telemetry.Span, MaxSpans+1)}); err == nil {
		t.Error("encoder accepted an oversize span section")
	}
	if _, err := appendMetrics(nil, &Metrics{Flags: MetricsTraces, Spans: []telemetry.Span{{Op: 1}}}); err == nil {
		t.Error("encoder accepted a span with a zero trace ID")
	}

	// HOTKEYS: hot-keys-only payload: class count uint32 at payload+1,
	// then class byte, entry count uint32, entries.
	rawH := encode(&Metrics{Flags: MetricsHotKeys, HotKeys: []HotKeyClass{
		{Class: HotGet, Keys: telemetry.TopKSnapshot{{Key: 5, Count: 10, Err: 1}, {Key: 9, Count: 4, Err: 0}}},
	}})
	mut = append([]byte(nil), rawH...)
	mut[payload+1+4] = 0
	reject("hot-key class zero", mut)

	mut = append([]byte(nil), rawH...)
	mut[payload+1+4] = hotClassMax + 1
	reject("hot-key class out of range", mut)

	// Entry count over MaxHotKeys.
	mut = append([]byte(nil), rawH...)
	binary.LittleEndian.PutUint32(mut[payload+1+4+1:], MaxHotKeys+1)
	reject("hot-key entry count over MaxHotKeys", mut)

	// Entry count larger than the delivered entries.
	mut = append([]byte(nil), rawH...)
	binary.LittleEndian.PutUint32(mut[payload+1+4+1:], 3)
	reject("truncated hot-key entries", mut)

	// Non-canonical entry order: swap the counts so the second entry
	// outranks the first.
	mut = append([]byte(nil), rawH...)
	binary.LittleEndian.PutUint64(mut[payload+1+4+1+4+8:], 4)
	binary.LittleEndian.PutUint64(mut[payload+1+4+1+4+24+8:], 10)
	reject("non-canonical hot-key order", mut)

	// Non-ascending classes round-trip through the encoder's own check.
	if _, err := appendMetrics(nil, &Metrics{Flags: MetricsHotKeys, HotKeys: []HotKeyClass{
		{Class: HotSet}, {Class: HotGet},
	}}); err == nil {
		t.Error("encoder accepted non-ascending hot-key classes")
	}
	if _, err := appendMetrics(nil, &Metrics{Flags: MetricsHotKeys, HotKeys: []HotKeyClass{
		{Class: HotGet, Keys: make(telemetry.TopKSnapshot, MaxHotKeys+1)},
	}}); err == nil {
		t.Error("encoder accepted an oversize hot-key section")
	}
}

// TestMetricsMergeAcrossWire pins the property the cluster view relies
// on: decoding two nodes' payloads and merging their histograms equals
// the histogram of the union stream.
func TestMetricsMergeAcrossWire(t *testing.T) {
	var a, b, both telemetry.Histogram
	for i := 1; i <= 500; i++ {
		d := time.Duration(i*i) * time.Microsecond
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
		both.Record(d)
	}
	trip := func(h *telemetry.Histogram) *telemetry.HistogramSnapshot {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		m := &Metrics{Flags: MetricsHistograms, Hists: []OpHist{{ID: byte(OpGet), Snap: h.Snapshot()}}}
		if err := w.WriteResponse(Response{Status: StatusMetrics, Metrics: m}); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		resp, err := NewReader(&buf).ReadResponse()
		if err != nil {
			t.Fatal(err)
		}
		return resp.Metrics.Hist(byte(OpGet))
	}
	merged := trip(&a)
	merged.Merge(trip(&b))
	if *merged != both.Snapshot() {
		t.Fatal("wire round trip broke histogram mergeability")
	}
}
