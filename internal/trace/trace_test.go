package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSequenceAppendDoesNotAlias(t *testing.T) {
	s := Sequence{1, 2, 3}
	s2 := s.Append(4)
	s[0] = 99
	if s2[0] != 1 {
		t.Fatal("Append aliased the receiver")
	}
	if len(s2) != 4 || s2[3] != 4 {
		t.Fatalf("Append result = %v", s2)
	}
}

func TestRestrict(t *testing.T) {
	s := Sequence{1, 2, 3, 2, 1, 4}
	got := s.Restrict(NewItemSet(1, 4))
	want := Sequence{1, 1, 4}
	if len(got) != len(want) {
		t.Fatalf("Restrict = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Restrict = %v, want %v", got, want)
		}
	}
}

func TestRestrictEmptySet(t *testing.T) {
	s := Sequence{1, 2, 3}
	if got := s.Restrict(NewItemSet()); len(got) != 0 {
		t.Fatalf("Restrict(∅) = %v, want empty", got)
	}
}

func TestUniverseAndDistinctCount(t *testing.T) {
	s := Sequence{5, 5, 7, 9, 7}
	if s.DistinctCount() != 3 {
		t.Fatalf("DistinctCount = %d, want 3", s.DistinctCount())
	}
	if !s.Universe().Equal(NewItemSet(5, 7, 9)) {
		t.Fatalf("Universe = %v", s.Universe().Sorted())
	}
}

func TestRepeat(t *testing.T) {
	s := Sequence{1, 2}
	got := s.Repeat(3)
	want := Sequence{1, 2, 1, 2, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Repeat = %v, want %v", got, want)
		}
	}
	if len(s.Repeat(0)) != 0 {
		t.Fatal("Repeat(0) should be empty")
	}
}

func TestConcat(t *testing.T) {
	a, b := Sequence{1}, Sequence{2, 3}
	got := a.Concat(b)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Concat = %v", got)
	}
}

func TestItemSetOps(t *testing.T) {
	a := NewItemSet(1, 2, 3)
	b := NewItemSet(2, 3, 4)
	if !a.Intersects(b) {
		t.Fatal("a should intersect b")
	}
	if a.SubsetOf(b) {
		t.Fatal("a is not a subset of b")
	}
	if !NewItemSet(2, 3).SubsetOf(a) {
		t.Fatal("{2,3} ⊆ a")
	}
	if a.Equal(b) {
		t.Fatal("a != b")
	}
	if NewItemSet(9).Intersects(a) {
		t.Fatal("{9} should not intersect a")
	}
}

func TestRangeAndRangeSeq(t *testing.T) {
	r := Range(3, 6)
	if !r.Equal(NewItemSet(3, 4, 5)) {
		t.Fatalf("Range = %v", r.Sorted())
	}
	s := RangeSeq(3, 6)
	if len(s) != 3 || s[0] != 3 || s[2] != 5 {
		t.Fatalf("RangeSeq = %v", s)
	}
	if Range(4, 4).Len() != 0 {
		t.Fatal("empty range should have no items")
	}
}

func TestParseLettersAndString(t *testing.T) {
	s, err := ParseLetters("A Y Z z")
	if err != nil {
		t.Fatal(err)
	}
	want := Sequence{0, 24, 25, 25}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("ParseLetters = %v, want %v", s, want)
		}
	}
	if got := s.String(); got != "A Y Z Z" {
		t.Fatalf("String = %q", got)
	}
	if _, err := ParseLetters("A1"); err == nil {
		t.Fatal("digits should be rejected")
	}
}

func TestStringLargeItems(t *testing.T) {
	s := Sequence{30, 1}
	if got := s.String(); got != "30 B" {
		t.Fatalf("String = %q", got)
	}
}

func TestIORoundTrip(t *testing.T) {
	f := func(raw []uint64) bool {
		seq := make(Sequence, len(raw))
		for i, v := range raw {
			seq[i] = Item(v)
		}
		var buf bytes.Buffer
		if err := Write(&buf, seq); err != nil {
			t.Log(err)
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			t.Log(err)
			return false
		}
		if len(back) != len(seq) {
			return false
		}
		for i := range seq {
			if back[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage should be rejected")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should be rejected")
	}
	// Valid magic, truncated body.
	var buf bytes.Buffer
	if err := Write(&buf, Sequence{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace should be rejected")
	}
}

func TestRestrictProperty(t *testing.T) {
	// σ[X] contains exactly the requests for items in X, in order.
	f := func(raw []uint8, members []uint8) bool {
		seq := make(Sequence, len(raw))
		for i, v := range raw {
			seq[i] = Item(v % 10)
		}
		x := make(ItemSet)
		for _, m := range members {
			x.Add(Item(m % 10))
		}
		got := seq.Restrict(x)
		j := 0
		for _, it := range seq {
			if x.Contains(it) {
				if j >= len(got) || got[j] != it {
					return false
				}
				j++
			}
		}
		return j == len(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
