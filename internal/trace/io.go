package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format, used by cmd/tracegen and cmd/cachesim:
//
//	magic   [4]byte  "SATR" (Set-Associative TRace)
//	version uint32   1
//	count   uint64   number of requests
//	items   count × uint64 little-endian
const (
	traceMagic   = "SATR"
	traceVersion = 1
)

// Write serializes s to w in the binary trace format.
func Write(w io.Writer, s Sequence) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], traceVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(s)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, it := range s {
		binary.LittleEndian.PutUint64(buf[:], uint64(it))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a sequence previously written by Write.
func Read(r io.Reader) (Sequence, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint64(hdr[4:12])
	const maxReasonable = 1 << 34 // refuse absurd headers rather than OOM
	if count > maxReasonable {
		return nil, fmt.Errorf("trace: header claims %d requests, refusing", count)
	}
	out := make(Sequence, count)
	var buf [8]byte
	for i := range out {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: reading request %d: %w", i, err)
		}
		out[i] = Item(binary.LittleEndian.Uint64(buf[:]))
	}
	return out, nil
}
