package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// StreamWriter writes a trace incrementally, without materializing the
// whole sequence in memory — used for very long generated traces. The
// request count is written on Close by seeking back over the header, so the
// destination must support io.WriteSeeker semantics via the two-pass
// construction below; for pure streams (pipes), the writer buffers counts
// and emits a trailing footer-free format identical to Write's when the
// destination supports seeking.
type StreamWriter struct {
	w     io.WriteSeeker
	bw    *bufio.Writer
	count uint64
	done  bool
}

// NewStreamWriter starts a trace on w, reserving the header.
func NewStreamWriter(w io.WriteSeeker) (*StreamWriter, error) {
	sw := &StreamWriter{w: w, bw: bufio.NewWriter(w)}
	if _, err := sw.bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], traceVersion)
	// Count placeholder: fixed up in Close.
	if _, err := sw.bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return sw, nil
}

// Append writes one request.
func (sw *StreamWriter) Append(x Item) error {
	if sw.done {
		return fmt.Errorf("trace: append after Close")
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(x))
	if _, err := sw.bw.Write(buf[:]); err != nil {
		return err
	}
	sw.count++
	return nil
}

// AppendAll writes a batch of requests.
func (sw *StreamWriter) AppendAll(seq Sequence) error {
	for _, x := range seq {
		if err := sw.Append(x); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of requests appended so far.
func (sw *StreamWriter) Count() uint64 { return sw.count }

// Close flushes, patches the header's request count, and finalizes the
// trace. The StreamWriter must not be used afterwards.
func (sw *StreamWriter) Close() error {
	if sw.done {
		return nil
	}
	sw.done = true
	if err := sw.bw.Flush(); err != nil {
		return err
	}
	// The count lives 8 bytes into the file (after magic+version).
	if _, err := sw.w.Seek(int64(len(traceMagic))+4, io.SeekStart); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], sw.count)
	if _, err := sw.w.Write(buf[:]); err != nil {
		return err
	}
	_, err := sw.w.Seek(0, io.SeekEnd)
	return err
}

// StreamReader iterates a trace without loading it whole.
type StreamReader struct {
	br        *bufio.Reader
	remaining uint64
}

// NewStreamReader opens a trace for streaming reads, validating the header.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &StreamReader{br: br, remaining: binary.LittleEndian.Uint64(hdr[4:12])}, nil
}

// Remaining returns how many requests are left.
func (sr *StreamReader) Remaining() uint64 { return sr.remaining }

// Next returns the next request; io.EOF after the last one.
func (sr *StreamReader) Next() (Item, error) {
	if sr.remaining == 0 {
		return 0, io.EOF
	}
	var buf [8]byte
	if _, err := io.ReadFull(sr.br, buf[:]); err != nil {
		return 0, fmt.Errorf("trace: reading request: %w", err)
	}
	sr.remaining--
	return Item(binary.LittleEndian.Uint64(buf[:])), nil
}
