package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// StreamWriter writes a trace incrementally — used for very long generated
// traces. The header's request count is only known at Close, which creates
// two regimes:
//
//   - If the destination implements io.WriteSeeker (files), requests stream
//     straight through a buffer and Close seeks back to patch the count:
//     memory use is O(1) regardless of trace length.
//   - Otherwise (pipes, network sockets, bytes.Buffer), the writer buffers
//     the request payload in memory and emits the complete trace — header
//     with final count, then payload — on Close. The output format is
//     byte-identical; the cost is O(trace length) memory.
type StreamWriter struct {
	w     io.Writer
	ws    io.WriteSeeker // non-nil in the seekable regime
	bw    *bufio.Writer  // request payload destination in both regimes
	buf   *bytes.Buffer  // payload accumulator in the buffering regime
	count uint64
	done  bool
}

// NewStreamWriter starts a trace on w. Seekable destinations stream with
// constant memory; non-seekable ones fall back to buffering the payload in
// memory until Close (see the type comment).
//
// Seekability is probed with a zero-length Seek, not just a type assertion:
// an *os.File attached to a pipe or FIFO satisfies io.WriteSeeker but fails
// every Seek with ESPIPE, and must take the buffering path.
func NewStreamWriter(w io.Writer) (*StreamWriter, error) {
	if ws, ok := w.(io.WriteSeeker); ok && seekable(ws) {
		sw := &StreamWriter{w: w, ws: ws, bw: bufio.NewWriter(ws)}
		if _, err := sw.bw.WriteString(traceMagic); err != nil {
			return nil, err
		}
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[0:4], traceVersion)
		// Count placeholder: fixed up in Close.
		if _, err := sw.bw.Write(hdr[:]); err != nil {
			return nil, err
		}
		return sw, nil
	}
	buf := &bytes.Buffer{}
	return &StreamWriter{w: w, buf: buf, bw: bufio.NewWriter(buf)}, nil
}

// seekable reports whether ws actually supports seeking (a no-op seek
// succeeds), distinguishing real files from pipes wearing the interface.
func seekable(ws io.WriteSeeker) bool {
	_, err := ws.Seek(0, io.SeekCurrent)
	return err == nil
}

// Append writes one request.
func (sw *StreamWriter) Append(x Item) error {
	if sw.done {
		return fmt.Errorf("trace: append after Close")
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(x))
	if _, err := sw.bw.Write(buf[:]); err != nil {
		return err
	}
	sw.count++
	return nil
}

// AppendAll writes a batch of requests.
func (sw *StreamWriter) AppendAll(seq Sequence) error {
	for _, x := range seq {
		if err := sw.Append(x); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of requests appended so far.
func (sw *StreamWriter) Count() uint64 { return sw.count }

// Close flushes, writes the final request count into the header (seeking
// back over it, or emitting the buffered trace in one piece), and finalizes
// the trace. The StreamWriter must not be used afterwards.
func (sw *StreamWriter) Close() error {
	if sw.done {
		return nil
	}
	sw.done = true
	if err := sw.bw.Flush(); err != nil {
		return err
	}
	if sw.ws != nil {
		// The count lives 8 bytes into the file (after magic+version).
		if _, err := sw.ws.Seek(int64(len(traceMagic))+4, io.SeekStart); err != nil {
			return err
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], sw.count)
		if _, err := sw.ws.Write(buf[:]); err != nil {
			return err
		}
		// O_APPEND files pass the construction-time seek probe but ignore
		// the offset on write, appending the count instead of patching the
		// header. Detect that by checking where the write actually landed
		// so it becomes an error rather than a silently corrupt trace.
		pos, err := sw.ws.Seek(0, io.SeekCurrent)
		if err != nil {
			return err
		}
		if want := int64(len(traceMagic)) + 4 + 8; pos != want {
			return fmt.Errorf("trace: header patch landed at offset %d, want %d (destination opened with O_APPEND?)", pos, want)
		}
		_, err = sw.ws.Seek(0, io.SeekEnd)
		return err
	}
	// Buffering regime: the count is known now, so emit header + payload.
	if _, err := io.WriteString(sw.w, traceMagic); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], traceVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], sw.count)
	if _, err := sw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := sw.w.Write(sw.buf.Bytes())
	return err
}

// StreamReader iterates a trace without loading it whole.
type StreamReader struct {
	br        *bufio.Reader
	remaining uint64
}

// NewStreamReader opens a trace for streaming reads, validating the header.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &StreamReader{br: br, remaining: binary.LittleEndian.Uint64(hdr[4:12])}, nil
}

// Remaining returns how many requests are left.
func (sr *StreamReader) Remaining() uint64 { return sr.remaining }

// Next returns the next request; io.EOF after the last one.
func (sr *StreamReader) Next() (Item, error) {
	if sr.remaining == 0 {
		return 0, io.EOF
	}
	var buf [8]byte
	if _, err := io.ReadFull(sr.br, buf[:]); err != nil {
		return 0, fmt.Errorf("trace: reading request: %w", err)
	}
	sr.remaining--
	return Item(binary.LittleEndian.Uint64(buf[:])), nil
}
