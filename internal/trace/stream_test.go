package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestStreamRoundTripViaFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.satr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewStreamWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	want := Sequence{5, 9, 5, 1000000007}
	if err := sw.AppendAll(want); err != nil {
		t.Fatal(err)
	}
	if sw.Count() != uint64(len(want)) {
		t.Fatalf("Count = %d", sw.Count())
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Readable both by the batch reader and the stream reader.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(want) {
		t.Fatalf("batch read %v", batch)
	}
	sr, err := NewStreamReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Remaining() != uint64(len(want)) {
		t.Fatalf("Remaining = %d", sr.Remaining())
	}
	for i, w := range want {
		got, err := sr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("request %d = %v, want %v", i, got, w)
		}
	}
	if _, err := sr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestStreamWriterAppendAfterClose(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "t.satr"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sw, err := NewStreamWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Append(1); err == nil {
		t.Fatal("Append after Close should fail")
	}
}

func TestStreamReaderRejectsGarbage(t *testing.T) {
	if _, err := NewStreamReader(bytes.NewReader([]byte("garbage!!"))); err == nil {
		t.Fatal("garbage should be rejected")
	}
}

func TestStreamWriterBatchEquivalence(t *testing.T) {
	// Write with the batch API and the stream API; byte-identical output.
	seq := RangeSeq(0, 100)
	var batch bytes.Buffer
	if err := Write(&batch, seq); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.satr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewStreamWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AppendAll(seq); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	streamed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batch.Bytes(), streamed) {
		t.Fatal("stream and batch formats differ")
	}
}
