package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestStreamRoundTripViaFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.satr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewStreamWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	want := Sequence{5, 9, 5, 1000000007}
	if err := sw.AppendAll(want); err != nil {
		t.Fatal(err)
	}
	if sw.Count() != uint64(len(want)) {
		t.Fatalf("Count = %d", sw.Count())
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Readable both by the batch reader and the stream reader.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(want) {
		t.Fatalf("batch read %v", batch)
	}
	sr, err := NewStreamReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Remaining() != uint64(len(want)) {
		t.Fatalf("Remaining = %d", sr.Remaining())
	}
	for i, w := range want {
		got, err := sr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("request %d = %v, want %v", i, got, w)
		}
	}
	if _, err := sr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestStreamWriterAppendAfterClose(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "t.satr"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sw, err := NewStreamWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Append(1); err == nil {
		t.Fatal("Append after Close should fail")
	}
}

func TestStreamReaderRejectsGarbage(t *testing.T) {
	if _, err := NewStreamReader(bytes.NewReader([]byte("garbage!!"))); err == nil {
		t.Fatal("garbage should be rejected")
	}
}

func TestStreamWriterBatchEquivalence(t *testing.T) {
	// Write with the batch API and the stream API; byte-identical output.
	seq := RangeSeq(0, 100)
	var batch bytes.Buffer
	if err := Write(&batch, seq); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.satr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewStreamWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AppendAll(seq); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	streamed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batch.Bytes(), streamed) {
		t.Fatal("stream and batch formats differ")
	}
}

func TestStreamWriterNonSeekable(t *testing.T) {
	// A bytes.Buffer is not an io.WriteSeeker: this exercises the buffering
	// fallback, whose output must be byte-identical to the seekable path.
	seq := RangeSeq(0, 50)
	var want bytes.Buffer
	if err := Write(&want, seq); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	sw, err := NewStreamWriter(&got)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AppendAll(seq); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		// Nothing may reach a non-seekable destination before Close: the
		// header's count is not yet known.
		t.Fatalf("%d bytes written before Close", got.Len())
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("non-seekable output differs from batch format")
	}
	if err := sw.Append(1); err == nil {
		t.Fatal("Append after Close should fail")
	}
}

func TestStreamWriterThroughPipe(t *testing.T) {
	// An io.Pipe is the canonical non-seekable destination the doc promises
	// to support: write a trace through it and stream-read it on the far end.
	seq := Sequence{2, 7, 1, 8, 2, 8}
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		sw, err := NewStreamWriter(pw)
		if err == nil {
			if err = sw.AppendAll(seq); err == nil {
				err = sw.Close()
			}
		}
		pw.CloseWithError(err)
		done <- err
	}()
	sr, err := NewStreamReader(pr)
	if err != nil {
		t.Fatal(err)
	}
	var got Sequence
	for {
		x, err := sr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, x)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(got) != len(seq) {
		t.Fatalf("read %v, want %v", got, seq)
	}
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("request %d = %v, want %v", i, got[i], seq[i])
		}
	}
}

func TestStreamWriterOSPipe(t *testing.T) {
	// An *os.File backed by a pipe satisfies io.WriteSeeker but every Seek
	// fails with ESPIPE; the constructor's seek probe must route it to the
	// buffering fallback instead of corrupting the header.
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	seq := RangeSeq(0, 30)
	done := make(chan error, 1)
	go func() {
		sw, err := NewStreamWriter(pw)
		if err == nil {
			if err = sw.AppendAll(seq); err == nil {
				err = sw.Close()
			}
		}
		pw.Close()
		done <- err
	}()
	got, err := Read(pr)
	pr.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(got) != len(seq) {
		t.Fatalf("read %d requests, want %d", len(got), len(seq))
	}
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("request %d = %v, want %v", i, got[i], seq[i])
		}
	}
}

func TestStreamWriterAppendModeRejected(t *testing.T) {
	// An O_APPEND file passes the seek probe but appends the header patch
	// instead of overwriting it; Close must report an error, not emit a
	// silently corrupt trace.
	path := filepath.Join(t.TempDir(), "a.satr")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sw, err := NewStreamWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AppendAll(Sequence{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err == nil {
		t.Fatal("Close on an O_APPEND destination must fail rather than corrupt the header")
	}
}
