// Package trace defines request sequences over a universe of cacheable
// items, mirroring the formalism of Section 3 of the paper: a request
// sequence σ ∈ U* is an ordered list of item requests, σ[X] is the
// subsequence restricted to a set X ⊆ U, and σx appends a request.
//
// Items are opaque 64-bit identifiers. The zero Item is valid; generators
// in internal/workload conventionally number items from 0.
package trace

import (
	"fmt"
	"sort"
)

// Item identifies one cacheable object in the universe U.
type Item uint64

// Sequence is a request sequence σ. Sequences are value-like: all methods
// that derive a new sequence return a copy and never alias the receiver.
type Sequence []Item

// Append returns σx, the sequence with one request for x appended.
// The receiver is not modified.
func (s Sequence) Append(x Item) Sequence {
	out := make(Sequence, len(s)+1)
	copy(out, s)
	out[len(s)] = x
	return out
}

// Restrict returns σ[X]: the subsequence of s containing only requests for
// items in X, in their original order.
func (s Sequence) Restrict(x ItemSet) Sequence {
	out := make(Sequence, 0, len(s))
	for _, it := range s {
		if x.Contains(it) {
			out = append(out, it)
		}
	}
	return out
}

// Universe returns the set of distinct items appearing in s.
func (s Sequence) Universe() ItemSet {
	u := make(ItemSet, len(s)/2+1)
	for _, it := range s {
		u[it] = struct{}{}
	}
	return u
}

// DistinctCount returns |Σ|, the number of distinct items in s.
func (s Sequence) DistinctCount() int { return len(s.Universe()) }

// Clone returns a copy of s.
func (s Sequence) Clone() Sequence {
	out := make(Sequence, len(s))
	copy(out, s)
	return out
}

// Concat returns the concatenation of s followed by t, as a new sequence.
func (s Sequence) Concat(t Sequence) Sequence {
	out := make(Sequence, 0, len(s)+len(t))
	out = append(out, s...)
	out = append(out, t...)
	return out
}

// Repeat returns s replayed n times. Repeat(0) is the empty sequence.
func (s Sequence) Repeat(n int) Sequence {
	if n < 0 {
		panic(fmt.Sprintf("trace: negative repeat count %d", n))
	}
	out := make(Sequence, 0, len(s)*n)
	for i := 0; i < n; i++ {
		out = append(out, s...)
	}
	return out
}

// String renders short sequences with letters (A, B, ...) for items < 26 and
// numbers otherwise; used by the stability counterexample printer.
func (s Sequence) String() string {
	b := make([]byte, 0, len(s)*2)
	for i, it := range s {
		if i > 0 {
			b = append(b, ' ')
		}
		if it < 26 {
			b = append(b, byte('A'+it))
		} else {
			b = append(b, []byte(fmt.Sprintf("%d", uint64(it)))...)
		}
	}
	return string(b)
}

// ItemSet is a finite subset X ⊆ U.
type ItemSet map[Item]struct{}

// NewItemSet builds a set from the given items.
func NewItemSet(items ...Item) ItemSet {
	s := make(ItemSet, len(items))
	for _, it := range items {
		s[it] = struct{}{}
	}
	return s
}

// Contains reports whether x ∈ s.
func (s ItemSet) Contains(x Item) bool {
	_, ok := s[x]
	return ok
}

// Add inserts x into s.
func (s ItemSet) Add(x Item) { s[x] = struct{}{} }

// Len returns |s|.
func (s ItemSet) Len() int { return len(s) }

// Sorted returns the elements of s in increasing order.
func (s ItemSet) Sorted() []Item {
	out := make([]Item, 0, len(s))
	for it := range s {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether s and t contain exactly the same items.
func (s ItemSet) Equal(t ItemSet) bool {
	if len(s) != len(t) {
		return false
	}
	for it := range s {
		if !t.Contains(it) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in t.
func (s ItemSet) SubsetOf(t ItemSet) bool {
	if len(s) > len(t) {
		return false
	}
	for it := range s {
		if !t.Contains(it) {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ t ≠ ∅.
func (s ItemSet) Intersects(t ItemSet) bool {
	small, big := s, t
	if len(big) < len(small) {
		small, big = big, small
	}
	for it := range small {
		if big.Contains(it) {
			return true
		}
	}
	return false
}

// Range builds the contiguous item set {lo, lo+1, ..., hi-1}.
func Range(lo, hi Item) ItemSet {
	if hi < lo {
		panic(fmt.Sprintf("trace: invalid range [%d, %d)", lo, hi))
	}
	s := make(ItemSet, int(hi-lo))
	for it := lo; it < hi; it++ {
		s[it] = struct{}{}
	}
	return s
}

// RangeSeq returns the sequence lo, lo+1, ..., hi-1 (one sequential scan of
// the contiguous universe segment).
func RangeSeq(lo, hi Item) Sequence {
	if hi < lo {
		panic(fmt.Sprintf("trace: invalid range [%d, %d)", lo, hi))
	}
	s := make(Sequence, 0, int(hi-lo))
	for it := lo; it < hi; it++ {
		s = append(s, it)
	}
	return s
}

// ParseLetters converts a string like "AYZZZZABYYBC" into a sequence,
// mapping 'A'→0, 'B'→1, ...; spaces are ignored. It is the inverse of
// Sequence.String for small universes and is used to transcribe the paper's
// counterexamples verbatim.
func ParseLetters(s string) (Sequence, error) {
	out := make(Sequence, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ':
		case r >= 'A' && r <= 'Z':
			out = append(out, Item(r-'A'))
		case r >= 'a' && r <= 'z':
			out = append(out, Item(r-'a'))
		default:
			return nil, fmt.Errorf("trace: invalid letter %q", r)
		}
	}
	return out, nil
}
