// Package skewed implements a skewed-associative cache (Seznec 1993) — the
// hardware relative of two-choice hashing. Each item may live in any of d
// buckets, one per independent hash function; lookups probe all d, and on a
// miss the item is inserted into the probe bucket whose current victim is
// oldest (a d-choice variant of LRU insertion).
//
// The power of d choices changes the balls-and-bins behaviour that drives
// the paper's threshold: with d = 2 the max load of n balls in n bins drops
// from Θ(log n/log log n) to Θ(log log n), so far smaller α suffices before
// conflict misses vanish. Experiment E19 measures the shift against the
// single-choice cache of the paper.
//
// The package is an extension beyond the paper (which analyzes d = 1); it
// exists to quantify how much of the threshold is an artifact of
// single-choice placement.
package skewed

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hashfn"
	"repro/internal/trace"
)

// Cache is a d-choice skewed-associative cache. It implements core.Cache.
type Cache struct {
	capacity int
	alpha    int
	d        int
	hashers  []*hashfn.Random
	buckets  []*bucketLRU
	where    map[trace.Item]int // item → physical bucket
	stats    core.Stats
	clock    int64
}

var _ core.Cache = (*Cache)(nil)

// bucketLRU is a minimal LRU set that exposes its victim's age, so the
// insert path can pick the probe bucket with the oldest victim.
type bucketLRU struct {
	cap   int
	items map[trace.Item]int64 // item → last-access time
}

func newBucketLRU(capacity int) *bucketLRU {
	return &bucketLRU{cap: capacity, items: make(map[trace.Item]int64, capacity)}
}

func (b *bucketLRU) victim() (trace.Item, int64) {
	var v trace.Item
	best := int64(1<<63 - 1)
	for it, ts := range b.items {
		if ts < best || (ts == best && it > v) {
			v, best = it, ts
		}
	}
	return v, best
}

// Config describes a skewed-associative cache.
type Config struct {
	// Capacity is the total slot count k.
	Capacity int
	// Alpha is the bucket size; must divide Capacity.
	Alpha int
	// Choices is d, the number of independent hash functions (≥ 1;
	// d = 1 degenerates to the paper's set-associative cache).
	Choices int
	// Seed drives the hash functions.
	Seed uint64
}

// New builds a skewed-associative cache.
func New(cfg Config) (*Cache, error) {
	if cfg.Capacity <= 0 || cfg.Alpha <= 0 || cfg.Capacity%cfg.Alpha != 0 {
		return nil, fmt.Errorf("skewed: bad geometry k=%d α=%d", cfg.Capacity, cfg.Alpha)
	}
	if cfg.Choices < 1 {
		return nil, fmt.Errorf("skewed: choices %d must be ≥ 1", cfg.Choices)
	}
	n := cfg.Capacity / cfg.Alpha
	c := &Cache{
		capacity: cfg.Capacity,
		alpha:    cfg.Alpha,
		d:        cfg.Choices,
		where:    make(map[trace.Item]int, cfg.Capacity),
	}
	seeds := hashfn.NewSeedSequence(cfg.Seed)
	for i := 0; i < cfg.Choices; i++ {
		c.hashers = append(c.hashers, hashfn.NewRandom(seeds.Next(), n))
	}
	c.buckets = make([]*bucketLRU, n)
	for i := range c.buckets {
		c.buckets[i] = newBucketLRU(cfg.Alpha)
	}
	return c, nil
}

// Access implements core.Cache.
func (c *Cache) Access(x trace.Item) bool {
	hit, _, _ := c.AccessDetail(x)
	return hit
}

// AccessDetail implements core.Cache.
func (c *Cache) AccessDetail(x trace.Item) (hit bool, evicted trace.Item, didEvict bool) {
	c.stats.Accesses++
	c.clock++
	if b, ok := c.where[x]; ok {
		c.buckets[b].items[x] = c.clock
		c.stats.Hits++
		return true, 0, false
	}
	c.stats.Misses++

	// Choose the probe bucket: prefer one with free space; otherwise the
	// one whose LRU victim is oldest (global-ish LRU across the d probes).
	best := -1
	bestAge := int64(1<<63 - 1)
	for i := 0; i < c.d; i++ {
		b := c.hashers[i].Bucket(x)
		bl := c.buckets[b]
		if len(bl.items) < bl.cap {
			best = b
			bestAge = -1
			break
		}
		if _, age := bl.victim(); age < bestAge {
			best, bestAge = b, age
		}
	}
	bl := c.buckets[best]
	if len(bl.items) == bl.cap {
		v, _ := bl.victim()
		delete(bl.items, v)
		delete(c.where, v)
		c.stats.Evictions++
		evicted, didEvict = v, true
	}
	bl.items[x] = c.clock
	c.where[x] = best
	return false, evicted, didEvict
}

// Contains implements core.Cache.
func (c *Cache) Contains(x trace.Item) bool {
	_, ok := c.where[x]
	return ok
}

// Len implements core.Cache.
func (c *Cache) Len() int { return len(c.where) }

// Capacity implements core.Cache.
func (c *Cache) Capacity() int { return c.capacity }

// Items implements core.Cache.
func (c *Cache) Items() []trace.Item {
	out := make([]trace.Item, 0, len(c.where))
	for it := range c.where {
		out = append(out, it)
	}
	return out
}

// Stats implements core.Cache.
func (c *Cache) Stats() core.Stats { return c.stats }

// Reset implements core.Cache.
func (c *Cache) Reset() {
	for i := range c.buckets {
		c.buckets[i] = newBucketLRU(c.alpha)
	}
	c.where = make(map[trace.Item]int, c.capacity)
	c.stats = core.Stats{}
	c.clock = 0
}

// Choices returns d.
func (c *Cache) Choices() int { return c.d }

// Alpha returns the bucket size.
func (c *Cache) Alpha() int { return c.alpha }
