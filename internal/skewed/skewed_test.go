package skewed

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/workload"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{Capacity: 0, Alpha: 1, Choices: 1},
		{Capacity: 8, Alpha: 3, Choices: 1},
		{Capacity: 8, Alpha: 2, Choices: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

// TestSingleChoiceMatchesSetAssocCost: with d = 1 the skewed cache is an
// α-way set-associative LRU cache; on any trace its hit/miss decisions
// match core.SetAssoc built over the same hash function family. (The two
// use different internal structures, so we compare costs on a workload
// where both see identical bucket assignments: d=1 uses the first derived
// seed exactly like core.SetAssoc does.)
func TestSingleChoiceMatchesSetAssocCost(t *testing.T) {
	const k, alpha, seed = 64, 4, 9
	sk := mustNew(t, Config{Capacity: k, Alpha: alpha, Choices: 1, Seed: seed})
	sa := core.MustNewSetAssoc(core.SetAssocConfig{
		Capacity: k, Alpha: alpha, Factory: policy.NewFactory(policy.LRUKind, 0), Seed: seed,
	})
	seq := workload.Uniform{Universe: 200}.Generate(20000, 3)
	for i, x := range seq {
		h1 := sk.Access(x)
		h2 := sa.Access(x)
		if h1 != h2 {
			t.Fatalf("step %d: d=1 skewed (%v) diverged from set-assoc (%v)", i, h1, h2)
		}
	}
}

// TestTwoChoicesReduceConflicts is the headline property: on a working-set
// scan that overloads single-choice buckets, d = 2 cuts conflict misses
// dramatically.
func TestTwoChoicesReduceConflicts(t *testing.T) {
	const k, alpha = 512, 4
	working := k / 2
	seq := trace.RangeSeq(0, trace.Item(working)).Repeat(8)
	cost := func(d int) uint64 {
		var total uint64
		for seed := uint64(0); seed < 5; seed++ {
			c := mustNew(t, Config{Capacity: k, Alpha: alpha, Choices: d, Seed: seed})
			total += core.RunSequence(c, seq).Misses
		}
		return total
	}
	one, two := cost(1), cost(2)
	if two >= one {
		t.Fatalf("d=2 (%d misses) should beat d=1 (%d)", two, one)
	}
	// The gap should be substantial: most of the conflict misses vanish.
	compulsory := uint64(working * 5)
	if float64(two-compulsory) > 0.5*float64(one-compulsory) {
		t.Errorf("two-choice conflicts %d not ≪ one-choice %d", two-compulsory, one-compulsory)
	}
}

func TestContractInvariants(t *testing.T) {
	f := func(raw []uint8, dRaw uint8) bool {
		d := int(dRaw%3) + 1
		c, err := New(Config{Capacity: 16, Alpha: 4, Choices: d, Seed: 5})
		if err != nil {
			return false
		}
		for _, r := range raw {
			x := trace.Item(r % 40)
			c.Access(x)
			if !c.Contains(x) {
				return false
			}
			if c.Len() > c.Capacity() {
				return false
			}
			// The item must be in one of its d candidate buckets.
			b := c.where[x]
			found := false
			for i := 0; i < d; i++ {
				if c.hashers[i].Bucket(x) == b {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		st := c.Stats()
		return st.Hits+st.Misses == st.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestResetReplays(t *testing.T) {
	c := mustNew(t, Config{Capacity: 32, Alpha: 4, Choices: 2, Seed: 7})
	seq := workload.Uniform{Universe: 80}.Generate(3000, 11)
	first := core.RunSequence(c, seq)
	c.Reset()
	second := core.RunSequence(c, seq)
	if first != second {
		t.Fatalf("replay diverged: %+v vs %+v", first, second)
	}
}

func TestBucketLoadsBounded(t *testing.T) {
	c := mustNew(t, Config{Capacity: 64, Alpha: 4, Choices: 2, Seed: 3})
	core.RunSequence(c, workload.Uniform{Universe: 500}.Generate(10000, 1))
	for i, b := range c.buckets {
		if len(b.items) > c.alpha {
			t.Fatalf("bucket %d holds %d > α", i, len(b.items))
		}
	}
}
