package server

import (
	"testing"
	"time"

	"repro/internal/concurrent"
	"repro/internal/wire"
)

// TestDelLeavesVersionedTombstone pins the v8 DEL contract: a delete is
// a versioned write that leaves a tombstone, and the tombstone refuses a
// later maintenance write of an older copy — the delayed-repair
// interleaving that resurrected deleted keys through v7, replayed
// deterministically.
func TestDelLeavesVersionedTombstone(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const key = uint64(7)
	if _, err := c.Set(key, []byte("live")); err != nil {
		t.Fatal(err)
	}
	var verOld uint64
	if err := c.GetBatchVersions([]uint64{key}, func(_ int, h bool, v uint64, _ []byte) {
		if h {
			verOld = v
		}
	}); err != nil {
		t.Fatal(err)
	}
	if verOld == 0 {
		t.Fatal("no stored version for the live value")
	}

	present, verTomb, err := c.Del(key)
	if err != nil || !present {
		t.Fatalf("Del = %v, %v; want present", present, err)
	}
	if verTomb <= verOld {
		t.Fatalf("tombstone version %d not above the live value's %d", verTomb, verOld)
	}

	// The delayed repair: the old value at its observed version, arriving
	// after the delete. Through v7 this stored the value; the tombstone
	// must now refuse it as stale.
	applied, winning, err := c.SetVersioned(key, wire.SetFlagRepair, verOld, []byte("live"))
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("a maintenance write of an older copy resurrected the deleted key")
	}
	if winning != verTomb {
		t.Errorf("stale rejection reports version %d, want the tombstone's %d", winning, verTomb)
	}
	if _, hit, err := c.Get(key); err != nil || hit {
		t.Fatalf("GET after refused repair = hit=%v, %v; want miss", hit, err)
	}

	// A strictly newer tombstone-flagged write applies; an older one is
	// refused — deletes obey the same conditional rule as values.
	if applied, _, err := c.SetTombstone(key, wire.SetFlagRepair, verTomb+1); err != nil || !applied {
		t.Fatalf("newer TOMBSTONE SET = applied=%v, %v; want applied", applied, err)
	}
	if applied, _, err := c.SetTombstone(key, wire.SetFlagRepair, verOld); err != nil || applied {
		t.Fatalf("older TOMBSTONE SET = applied=%v, %v; want stale refusal", applied, err)
	}

	// DEL of an absent key still writes a tombstone: this replica may
	// have missed the value entirely, and the delete must still outrank
	// whatever copy exists elsewhere.
	if present, ver, err := c.Del(999); err != nil || present || ver == 0 {
		t.Fatalf("Del(absent) = %v, ver %d, %v; want a fresh tombstone", present, ver, err)
	}

	st, err := c.Stats(false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tombstones != 2 {
		t.Errorf("Tombstones gauge = %d, want 2", st.Tombstones)
	}
	if st.StaleRepairs < 2 {
		t.Errorf("StaleRepairs = %d, want ≥ 2 (the refused repair and the refused old tombstone)", st.StaleRepairs)
	}
}

// TestTombstoneValueWriteOver: a user SET lands over a tombstone
// unconditionally (new data supersedes the delete), and the gauge tracks
// the flips in both directions.
func TestTombstoneValueWriteOver(t *testing.T) {
	srv, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const key = uint64(3)
	if _, _, err := c.Del(key); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.Stats(false); st.Tombstones != 1 {
		t.Fatalf("gauge after DEL = %d, want 1", st.Tombstones)
	}
	if _, err := c.Set(key, []byte("reborn")); err != nil {
		t.Fatal(err)
	}
	if v, hit, err := c.Get(key); err != nil || !hit || string(v) != "reborn" {
		t.Fatalf("GET after SET-over-tombstone = %q, %v, %v", v, hit, err)
	}
	if st, _ := c.Stats(false); st.Tombstones != 0 {
		t.Fatalf("gauge after SET over tombstone = %d, want 0", st.Tombstones)
	}
	_ = srv
}

// TestTombstoneReaper: past its TTL a tombstone is retired by the
// background reaper — the key disappears from the KEYS stream and the
// reaped count surfaces in STATS.
func TestTombstoneReaper(t *testing.T) {
	srv, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	srv.SetTombstoneTTL(time.Millisecond)
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.Del(11); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if n := srv.ReapTombstones(); n != 1 {
		t.Fatalf("ReapTombstones = %d, want 1", n)
	}
	recs, err := c.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("KEYS after reap = %v, want empty", recs)
	}
	st, err := c.Stats(false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tombstones != 0 || st.TombstonesReaped != 1 {
		t.Errorf("gauge/reaped = %d/%d, want 0/1", st.Tombstones, st.TombstonesReaped)
	}
}

// TestHintQueueAndReplay: a hint queued on one server is replayed to its
// target as a conditional versioned write once the replayer runs —
// values and tombstones both — and the STATS ledger records it.
func TestHintQueueAndReplay(t *testing.T) {
	holder, holderAddr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	holder.SetHintReplayInterval(10 * time.Millisecond)
	_, targetAddr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 2})

	c, err := wire.Dial(holderAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Hint a value write and a delete for the target: the target holds
	// neither, so both replays must apply.
	if err := c.Hint(targetAddr, 1, false, 100, []byte("handed-off")); err != nil {
		t.Fatal(err)
	}
	if err := c.Hint(targetAddr, 2, true, 200, nil); err != nil {
		t.Fatal(err)
	}

	tc, err := wire.Dial(targetAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, hit, err := tc.Get(1)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			if string(v) != "handed-off" {
				t.Fatalf("replayed value = %q", v)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hint not replayed within deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The tombstone hint must be resident on the target as a delete record.
	recs, err := tc.Keys()
	if err != nil {
		t.Fatal(err)
	}
	foundTomb := false
	for _, rec := range recs {
		if rec.Key == 2 && rec.Tombstone && rec.Version == 200 {
			foundTomb = true
		}
	}
	if !foundTomb {
		t.Fatalf("replayed tombstone missing from target KEYS: %v", recs)
	}

	hst, err := c.Stats(false)
	if err != nil {
		t.Fatal(err)
	}
	if hst.HintsQueued != 2 || hst.HintsReplayed != 2 {
		t.Errorf("holder hints queued/replayed = %d/%d, want 2/2", hst.HintsQueued, hst.HintsReplayed)
	}
	if n, bytes := holder.HintBacklog(); n != 0 || bytes != 0 {
		t.Errorf("hint backlog after replay = %d records / %d bytes, want empty", n, bytes)
	}
}

// TestHintBudgetDropsOldest: over the byte budget the oldest hints are
// dropped, newest kept — bounded memory, anti-entropy as the backstop.
func TestHintBudgetDropsOldest(t *testing.T) {
	srv, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	srv.SetHintReplayInterval(time.Hour) // keep the queue intact for inspection
	srv.SetHintBudget(3 * (64 + 10))     // room for ~3 ten-byte-value hints
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	val := []byte("0123456789")
	for k := uint64(1); k <= 5; k++ {
		if err := c.Hint("dead:1", k, false, k*10, val); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := srv.HintBacklog(); n != 3 {
		t.Fatalf("backlog = %d hints, want 3 (oldest 2 dropped)", n)
	}
	st, err := c.Stats(false)
	if err != nil {
		t.Fatal(err)
	}
	if st.HintsQueued != 5 {
		t.Errorf("HintsQueued = %d, want 5 (accepted counts, drops included)", st.HintsQueued)
	}
}

// TestTombstoneBlocksGetLease: a resident tombstone is a genuine miss to
// the lease path — GETL grants a fill lease over it, and the fill lands
// above the tombstone's version (a legitimate post-delete origin load).
func TestTombstoneBlocksGetLease(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const key = uint64(21)
	if _, err := c.Set(key, []byte("old")); err != nil {
		t.Fatal(err)
	}
	present, verTomb, err := c.Del(key)
	if err != nil || !present {
		t.Fatalf("Del = %v, %v", present, err)
	}
	ls, err := c.GetLease(key)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Token == 0 || ls.Stale {
		t.Fatalf("GETL over tombstone = %+v; want a fresh grant with no stale hint", ls)
	}
	filled, ver, err := c.SetLease(key, ls.Token, []byte("fresh"))
	if err != nil || !filled {
		t.Fatalf("post-delete fill = %v, %v; want applied", filled, err)
	}
	if ver <= verTomb {
		t.Errorf("fill version %d not above the tombstone's %d", ver, verTomb)
	}
	if v, hit, err := c.Get(key); err != nil || !hit || string(v) != "fresh" {
		t.Fatalf("GET after fill = %q, %v, %v", v, hit, err)
	}
}
