package server

import (
	"fmt"
	"net"
	"testing"

	"repro/internal/concurrent"
	"repro/internal/load"
	"repro/internal/workload"
)

// BenchmarkAlphaSweep is the end-to-end measurement of the paper's
// α-tradeoff: at fixed capacity k, each sub-benchmark serves a zipf
// workload over loopback TCP with a different bucket size α. Small α gives
// more buckets (less lock contention → higher QPS) but more conflict misses
// once α drops below the ~log₂ k threshold; both sides are reported as
// metrics (qps, miss ratio, conflict evictions per op).
//
// Run with:
//
//	go test -bench AlphaSweep -benchtime 200000x ./internal/server/
func BenchmarkAlphaSweep(b *testing.B) {
	const k = 1 << 12
	for _, alpha := range []int{1, 4, 16, 128, 1024, k} {
		b.Run(fmt.Sprintf("alpha=%d", alpha), func(b *testing.B) {
			cache, err := concurrent.New(concurrent.Config{Capacity: k, Alpha: alpha, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			srv := New(cache)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(ln)
			defer srv.Close()

			keys := workload.Zipf{Universe: 2 * k, S: 0.9, Shuffle: true}.Generate(b.N, 11)
			b.ResetTimer()
			res, err := load.Run(load.Config{
				Addr:        ln.Addr().String(),
				Conns:       4,
				Keys:        keys,
				Pipeline:    16,
				ValueSize:   32,
				ReadThrough: true,
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			snap := cache.Snapshot()
			b.ReportMetric(res.Throughput, "qps")
			b.ReportMetric(res.MissRatio(), "missratio")
			b.ReportMetric(float64(snap.ConflictEvictions)/float64(res.Ops), "conflict/op")
		})
	}
}
