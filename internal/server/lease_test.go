package server

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/concurrent"
	"repro/internal/wire"
)

// TestLeaseGrantFillServe pins the happy path of the v7 miss protocol:
// the first GETL of a cold key wins the fill lease, a concurrent GETL
// gets a bare zero-token LEASE (wait), the holder's fill lands with a
// version, and the key serves as a plain HIT afterwards — with the STATS
// counters telling the same story.
func TestLeaseGrantFillServe(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const key = uint64(11)
	ls, err := c.GetLease(key)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Hit || ls.Token == 0 || ls.Stale {
		t.Fatalf("first GETL = %+v, want a fill grant", ls)
	}
	if ls.TTL <= 0 {
		t.Fatalf("grant TTL = %v, want positive", ls.TTL)
	}

	// A second misser must NOT get a second lease for the key.
	waiter, err := c.GetLease(key)
	if err != nil {
		t.Fatal(err)
	}
	if waiter.Hit || waiter.Token != 0 || waiter.Stale {
		t.Fatalf("concurrent GETL = %+v, want a bare zero-token wait", waiter)
	}

	filled, ver, err := c.SetLease(key, ls.Token, []byte("origin-value"))
	if err != nil {
		t.Fatal(err)
	}
	if !filled || ver == 0 {
		t.Fatalf("fill: applied=%v ver=%d, want applied with a version", filled, ver)
	}

	after, err := c.GetLease(key)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Hit || string(after.Value) != "origin-value" {
		t.Fatalf("GETL after fill = %+v, want HIT origin-value", after)
	}

	st, err := c.Stats(false)
	if err != nil {
		t.Fatal(err)
	}
	if st.LeasesGranted != 1 || st.LeasesExpired != 0 {
		t.Fatalf("stats granted=%d expired=%d, want 1/0", st.LeasesGranted, st.LeasesExpired)
	}
}

// TestLeaseStaleHint evicts a filled key out of a tiny cache and asserts
// the lease table still serves the last known value as a stale hint to
// the storm while a new holder reloads: zero token, stale flag, old
// version and value.
func TestLeaseStaleHint(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 4, Alpha: 4, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const key = uint64(5)
	ls, err := c.GetLease(key)
	if err != nil || ls.Token == 0 {
		t.Fatalf("grant: %+v err=%v", ls, err)
	}
	if ok, _, err := c.SetLease(key, ls.Token, []byte("v1")); err != nil || !ok {
		t.Fatalf("fill: ok=%v err=%v", ok, err)
	}

	// Flood the 4-slot cache until the key is evicted (no interleaved GETs
	// of the key — a hit would re-promote it in LRU order).
	for i := uint64(100); i < 108; i++ {
		if _, err := c.Set(i, []byte("filler")); err != nil {
			t.Fatal(err)
		}
	}
	if _, hit, err := c.Get(key); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Fatal("key survived 8 sets into a 4-slot cache")
	}

	// First misser after the eviction is granted the reload...
	reload, err := c.GetLease(key)
	if err != nil || reload.Token == 0 {
		t.Fatalf("reload grant: %+v err=%v", reload, err)
	}
	// ...and the storm behind it eats the stale hint instead of waiting.
	hint, err := c.GetLease(key)
	if err != nil {
		t.Fatal(err)
	}
	if hint.Token != 0 || !hint.Stale || string(hint.Value) != "v1" || hint.Version == 0 {
		t.Fatalf("storm GETL = %+v, want stale hint carrying v1", hint)
	}
	st, err := c.Stats(false)
	if err != nil {
		t.Fatal(err)
	}
	if st.StaleServes != 1 {
		t.Fatalf("stats staleServes=%d, want 1", st.StaleServes)
	}
}

// TestLeaseExpiredFillRefused pins expiry: a fill arriving after the
// lease TTL answers LEASE_LOST and stores nothing.
func TestLeaseExpiredFillRefused(t *testing.T) {
	srv, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	srv.SetLeaseTTL(5 * time.Millisecond)
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const key = uint64(9)
	ls, err := c.GetLease(key)
	if err != nil || ls.Token == 0 {
		t.Fatalf("grant: %+v err=%v", ls, err)
	}
	time.Sleep(20 * time.Millisecond)
	filled, _, err := c.SetLease(key, ls.Token, []byte("too-late"))
	if err != nil {
		t.Fatal(err)
	}
	if filled {
		t.Fatal("expired fill was applied")
	}
	if _, hit, err := c.Get(key); err != nil || hit {
		t.Fatalf("GET after refused fill: hit=%v err=%v — the late fill stored anyway", hit, err)
	}
	st, err := c.Stats(false)
	if err != nil {
		t.Fatal(err)
	}
	if st.LeasesExpired == 0 {
		t.Fatal("stats counted no expired leases")
	}
}

// TestLeaseFillLosesToUserSet pins the lost-update arm: a user SET landing
// between grant and fill invalidates the lease, the fill answers
// LEASE_LOST carrying the winning version, and the user's value survives.
func TestLeaseFillLosesToUserSet(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const key = uint64(21)
	ls, err := c.GetLease(key)
	if err != nil || ls.Token == 0 {
		t.Fatalf("grant: %+v err=%v", ls, err)
	}
	if _, err := c.Set(key, []byte("user-write")); err != nil {
		t.Fatalf("user SET: %v", err)
	}
	filled, lostVer, err := c.SetLease(key, ls.Token, []byte("stale-fill"))
	if err != nil {
		t.Fatal(err)
	}
	if filled {
		t.Fatal("fill overwrote a newer user SET")
	}
	if lostVer == 0 {
		t.Fatal("LEASE_LOST carried no winning version despite the user SET having one")
	}
	val, hit, err := c.Get(key)
	if err != nil || !hit || string(val) != "user-write" {
		t.Fatalf("GET = %q hit=%v err=%v, want the user's value", val, hit, err)
	}
}

// TestLeaseFillAfterDelRefused pins DEL's resurrection guard: deleting a
// key drops its lease entry wholesale, so an in-flight fill answers
// LEASE_LOST and the key stays deleted — and no stale hint of it
// survives either.
func TestLeaseFillAfterDelRefused(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const key = uint64(33)
	ls, err := c.GetLease(key)
	if err != nil || ls.Token == 0 {
		t.Fatalf("grant: %+v err=%v", ls, err)
	}
	if _, _, err := c.Del(key); err != nil {
		t.Fatal(err)
	}
	filled, _, err := c.SetLease(key, ls.Token, []byte("zombie"))
	if err != nil {
		t.Fatal(err)
	}
	if filled {
		t.Fatal("fill resurrected a deleted key")
	}
	if _, hit, err := c.Get(key); err != nil || hit {
		t.Fatalf("GET after DEL: hit=%v err=%v", hit, err)
	}
	next, err := c.GetLease(key)
	if err != nil {
		t.Fatal(err)
	}
	if next.Token == 0 || next.Stale {
		t.Fatalf("GETL after DEL = %+v, want a fresh grant with no stale hint", next)
	}
}

// TestLeaseStressNeverOverwritesUserWrite is the -race storm: holders
// that dawdle past a tiny lease TTL race their fills against user SETs
// and concurrent GETLs on a small key space. The pinned invariant is the
// lease table's reason to exist: once ANY user SET of a key has
// completed, no fill may overwrite it — a read must never again return a
// fill payload for that key.
func TestLeaseStressNeverOverwritesUserWrite(t *testing.T) {
	srv, addr := startServer(t, concurrent.Config{Capacity: 256, Alpha: 4, Seed: 1})
	srv.SetLeaseTTL(2 * time.Millisecond)

	const keys = 8
	const workers = 8
	const iters = 300
	var userSet [keys]atomic.Bool

	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := wire.Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				key := uint64(rng.Intn(keys))
				switch rng.Intn(4) {
				case 0: // user write
					if _, err := c.Set(key, []byte(fmt.Sprintf("user-%d", key))); err != nil {
						errc <- err
						return
					}
					userSet[key].Store(true)
				case 1: // read-through GETL, sometimes filling late
					ls, err := c.GetLease(key)
					if err != nil {
						errc <- err
						return
					}
					if ls.Token != 0 {
						if rng.Intn(2) == 0 {
							// Dawdle past the TTL so the fill races expiry.
							time.Sleep(3 * time.Millisecond)
						}
						if _, _, err := c.SetLease(key, ls.Token, []byte(fmt.Sprintf("fill-%d", key))); err != nil {
							errc <- err
							return
						}
					}
				default: // plain read, checking the invariant
					wasUserSet := userSet[key].Load()
					val, hit, err := c.Get(key)
					if err != nil {
						errc <- err
						return
					}
					if wasUserSet && hit && string(val) == fmt.Sprintf("fill-%d", key) {
						errc <- fmt.Errorf("key %d: read fill payload after a user SET completed", key)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
