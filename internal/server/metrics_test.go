package server

import (
	"testing"
	"time"

	"repro/internal/concurrent"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// TestMetricsEndToEnd drives known traffic at a server and checks the
// METRICS response accounts for every operation: per-op histogram counts
// match the ops issued, quantiles land in a sane range, counters move,
// and unselected sections stay absent.
func TestMetricsEndToEnd(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 256, Alpha: 4, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const sets, gets, dels = 40, 100, 7
	for i := 0; i < sets; i++ {
		if _, err := c.Set(uint64(i), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < gets; i++ {
		if _, _, err := c.Get(uint64(i % 50)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < dels; i++ {
		if _, _, err := c.Del(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	m, err := c.Metrics(wire.MetricsAll)
	if err != nil {
		t.Fatal(err)
	}
	if m.Flags != wire.MetricsAll {
		t.Errorf("flags = %v, want %v", m.Flags, wire.MetricsAll)
	}
	for _, want := range []struct {
		id byte
		n  uint64
	}{
		{byte(wire.OpGet), gets},
		{byte(wire.OpSet), sets},
		{byte(wire.OpDel), dels},
	} {
		h := m.Hist(want.id)
		if h == nil {
			t.Fatalf("no %s histogram", wire.HistName(want.id))
		}
		if h.Count != want.n {
			t.Errorf("%s histogram Count = %d, want %d", wire.HistName(want.id), h.Count, want.n)
		}
		// Loopback service times: above 0, below a second.
		if p99 := h.Quantile(0.99); p99 <= 0 || p99 > time.Second {
			t.Errorf("%s p99 = %v, implausible", wire.HistName(want.id), p99)
		}
	}
	if m.Counter(wire.CounterBytesIn) == 0 || m.Counter(wire.CounterBytesOut) == 0 {
		t.Error("byte counters did not move")
	}
	if m.Counter(wire.CounterConns) != 1 {
		t.Errorf("CONNS = %d, want 1", m.Counter(wire.CounterConns))
	}

	// Section selection: a counters-only request must carry no histograms
	// or slow ops.
	m, err = c.Metrics(wire.MetricsCounters)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Hists) != 0 || len(m.SlowOps) != 0 || len(m.Counters) == 0 {
		t.Errorf("counters-only response carries hists=%d slowops=%d counters=%d",
			len(m.Hists), len(m.SlowOps), len(m.Counters))
	}
}

// TestSlowOpLog drops the threshold to zero-distance so every op is
// "slow", then checks the ring retains op, key hash, duration and
// version — and that the key never appears verbatim.
func TestSlowOpLog(t *testing.T) {
	srv, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	srv.SetSlowOpThreshold(time.Nanosecond) // everything qualifies
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const key = 777
	if _, err := c.Set(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	// The stored version (which the SET's slow-op record must carry) is
	// readable back through a versioned GET.
	var ver uint64
	if err := c.GetBatchVersions([]uint64{key}, func(_ int, hit bool, v uint64, _ []byte) {
		if hit {
			ver = v
		}
	}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(wire.MetricsSlowOps | wire.MetricsCounters)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.SlowOps) == 0 {
		t.Fatal("no slow ops recorded at a 1ns threshold")
	}
	var found bool
	for _, r := range m.SlowOps {
		if r.KeyHash == key {
			t.Error("slow-op log stores the raw key, want a scrambled hash")
		}
		if r.Op == byte(wire.OpSet) && r.KeyHash == telemetry.HashKey(key) {
			found = true
			if r.DurationNanos == 0 {
				t.Error("slow-op record lost its duration")
			}
			if r.Version != ver {
				t.Errorf("slow-op version = %d, want %d", r.Version, ver)
			}
			if r.UnixNanos == 0 {
				t.Error("slow-op record lost its timestamp")
			}
		}
	}
	if !found {
		t.Error("the SET never reached the slow-op ring")
	}
	if got := m.Counter(wire.CounterSlowOps); got != uint64(len(m.SlowOps)) {
		t.Errorf("SLOW_OPS counter = %d, ring holds %d", got, len(m.SlowOps))
	}

	// Disabling the threshold stops the ring from growing.
	srv.SetSlowOpThreshold(0)
	before := srv.slowLog.Total()
	if _, _, err := c.Get(key); err != nil {
		t.Fatal(err)
	}
	if srv.slowLog.Total() != before {
		t.Error("slow-op ring grew with the threshold disabled")
	}
}

// TestRepairQueueHighWater pins the STATS satellite: after async
// maintenance traffic the high-water mark is nonzero and at least the
// instantaneous depth, and it survives the queue draining back to empty.
func TestRepairQueueHighWater(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 256, Alpha: 4, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 50; i++ {
		if _, err := c.SetFlags(uint64(i), wire.SetFlagRepair|wire.SetFlagAsync, []byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	// The queue may have drained entirely by now; the high-water mark must
	// still prove it was occupied.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, err := c.Stats(false)
		if err != nil {
			t.Fatal(err)
		}
		if st.RepairQueueHighWater >= 1 && st.RepairQueueHighWater >= st.RepairQueueDepth {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("RepairQueueHighWater = %d (depth %d), want ≥1 and ≥depth",
				st.RepairQueueHighWater, st.RepairQueueDepth)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRepairWaitHistogram: async maintenance writes must land in the
// REPAIR_WAIT histogram when they drain.
func TestRepairWaitHistogram(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 256, Alpha: 4, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 20
	for i := 0; i < n; i++ {
		if _, err := c.SetFlags(uint64(i), wire.SetFlagRepair|wire.SetFlagAsync, []byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		m, err := c.Metrics(wire.MetricsHistograms)
		if err != nil {
			t.Fatal(err)
		}
		if h := m.Hist(wire.HistRepairWait); h != nil && h.Count == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("REPAIR_WAIT histogram never reached %d samples", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSpansAndHotKeys drives a mix of traced and untraced traffic at a
// server and checks the v6 flight-recorder additions: only sampled
// requests land in the span ring (with op, status, key hash, and the
// propagated trace ID), and the hot-key sketches rank a planted hot key
// first in its class while never spelling the raw key.
func TestSpansAndHotKeys(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 256, Alpha: 4, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const hotKey = 42
	tc := wire.TraceContext{Flags: wire.TraceFlagSampled}
	tc.ID[0] = 0xAB

	// One sampled traced GET, one traced-but-unsampled GET, and a pile of
	// untraced GETs skewed at the hot key.
	if _, err := c.Set(hotKey, []byte("hot")); err != nil {
		t.Fatal(err)
	}
	if err := c.EnqueueGetTraced(hotKey, tc); err != nil {
		t.Fatal(err)
	}
	unsampled := wire.TraceContext{}
	unsampled.ID[0] = 0xCD
	if err := c.EnqueueGetTraced(hotKey, unsampled); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.ReadResponse(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		k := uint64(i % 10)
		if i%2 == 0 {
			k = hotKey
		}
		if _, _, err := c.Get(k); err != nil {
			t.Fatal(err)
		}
	}

	m, err := c.Metrics(wire.MetricsTraces | wire.MetricsHotKeys)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Spans) != 1 {
		t.Fatalf("span ring holds %d spans, want exactly the sampled request", len(m.Spans))
	}
	sp := m.Spans[0]
	if sp.TraceID != telemetry.TraceID(tc.ID) {
		t.Errorf("span trace ID = %s, want %s", sp.TraceID, telemetry.TraceID(tc.ID))
	}
	if sp.Op != byte(wire.OpGet) || sp.Status != byte(wire.StatusHit) {
		t.Errorf("span op/status = %d/%d, want GET/HIT", sp.Op, sp.Status)
	}
	if sp.KeyHash != telemetry.HashKey(hotKey) {
		t.Errorf("span key hash = %d, want scrambled %d", sp.KeyHash, telemetry.HashKey(hotKey))
	}
	if sp.DurationNanos == 0 || sp.UnixNanos == 0 {
		t.Error("span lost its timing")
	}

	gets := m.HotClass(wire.HotGet)
	if len(gets) == 0 {
		t.Fatal("no GET hot-key entries after 200 GETs")
	}
	if gets[0].Key != telemetry.HashKey(hotKey) {
		t.Errorf("hottest GET key = %d, want scrambled %d", gets[0].Key, telemetry.HashKey(hotKey))
	}
	for _, e := range gets {
		if e.Key == hotKey {
			t.Error("hot-key sketch stores the raw key, want a scrambled hash")
		}
	}
	if sets := m.HotClass(wire.HotSet); len(sets) == 0 {
		t.Error("the SET never reached its hot-key class")
	}
}

// TestSlowOpTraceJoin pins the join the debugging walkthrough relies
// on: a traced request that crosses the slow threshold leaves a slow-op
// record carrying its trace ID, while untraced slow ops carry zero.
func TestSlowOpTraceJoin(t *testing.T) {
	srv, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	srv.SetSlowOpThreshold(time.Nanosecond) // everything qualifies
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tc := wire.TraceContext{Flags: wire.TraceFlagSampled}
	tc.ID[5] = 0x77
	if err := c.EnqueueSetFlagsTraced(9, 0, tc, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadResponse(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(9); err != nil { // untraced slow op
		t.Fatal(err)
	}

	m, err := c.Metrics(wire.MetricsSlowOps)
	if err != nil {
		t.Fatal(err)
	}
	var traced, untraced bool
	for _, r := range m.SlowOps {
		switch {
		case r.Op == byte(wire.OpSet) && r.TraceID == telemetry.TraceID(tc.ID):
			traced = true
		case r.Op == byte(wire.OpGet) && r.TraceID.IsZero():
			untraced = true
		}
	}
	if !traced {
		t.Error("the traced SET's slow-op record lost its trace ID")
	}
	if !untraced {
		t.Error("the untraced GET's slow-op record should carry a zero trace ID")
	}
}

// TestRepairDrainSpan pins trace propagation across the async
// maintenance queue: a sampled VERSIONED|ASYNC write records a span at
// drain time that joins the originating trace ID and separates queue
// wait from apply time.
func TestRepairDrainSpan(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 256, Alpha: 4, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tc := wire.TraceContext{Flags: wire.TraceFlagSampled}
	tc.ID[1] = 0x44
	flags := wire.SetFlagRepair | wire.SetFlagAsync
	if err := c.EnqueueSetVersionedTraced(123, flags, 7, tc, []byte("r")); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadResponse(); err != nil {
		t.Fatal(err)
	}

	// Two spans must appear: the accept (the SET request itself) and the
	// drain-time apply, both under the same trace ID, the drain one with
	// a queue wait.
	deadline := time.Now().Add(2 * time.Second)
	for {
		m, err := c.Metrics(wire.MetricsTraces)
		if err != nil {
			t.Fatal(err)
		}
		var accept, drain bool
		for _, sp := range m.Spans {
			if sp.TraceID != telemetry.TraceID(tc.ID) {
				t.Fatalf("span with foreign trace ID %s", sp.TraceID)
			}
			if sp.Op != byte(wire.OpSet) {
				t.Fatalf("span op = %d, want SET", sp.Op)
			}
			if sp.QueueWaitNanos == 0 {
				accept = true
			} else {
				drain = true
				if sp.KeyHash != telemetry.HashKey(123) {
					t.Errorf("drain span key hash = %d, want scrambled %d", sp.KeyHash, telemetry.HashKey(123))
				}
			}
		}
		if accept && drain {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain span never appeared (accept=%v drain=%v, %d spans)", accept, drain, len(m.Spans))
		}
		time.Sleep(10 * time.Millisecond)
	}
}
