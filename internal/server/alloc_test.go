package server

import (
	"net"
	"testing"

	"repro/internal/concurrent"
	"repro/internal/wire"
)

// benchServer boots a loopback server for the round-trip alloc gates and
// returns its address.
func benchServer(tb testing.TB) string {
	tb.Helper()
	cache, err := concurrent.New(concurrent.Config{Capacity: 1 << 12, Alpha: 16, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	srv := New(cache)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go srv.Serve(ln)
	tb.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// benchClient boots a loopback server and dials one wire client at it: the
// steady-state round trip the PR 9 alloc gates measure. The value is sized
// like the harness default (64 B payload).
func benchClient(tb testing.TB) *wire.Client {
	tb.Helper()
	c, err := wire.Dial(benchServer(tb))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { c.Close() })
	return c
}

// TestGetRoundTripAllocs gates the steady-state GET hit round trip at zero
// heap allocations per op — across BOTH ends: AllocsPerRun counts
// process-global mallocs, so the server goroutine's decode/lookup/encode
// is inside the gate, not just the client codec. GetShared is the
// zero-copy read; plain Get adds exactly the one documented copy.
func TestGetRoundTripAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates per operation; alloc gate runs without -race")
	}
	c := benchClient(t)
	if _, err := c.Set(42, wirePayload(64)); err != nil {
		t.Fatal(err)
	}
	get := func() {
		v, ok, err := c.GetShared(42)
		if err != nil || !ok || len(v) != 64 {
			t.Fatalf("get: ok=%v len=%d err=%v", ok, len(v), err)
		}
	}
	// Warm the path: the first vectored write allocates the connection's
	// iovec array, and the codec buffers grow to their steady size.
	for i := 0; i < 128; i++ {
		get()
	}
	if allocs := testing.AllocsPerRun(400, get); allocs > 0.1 {
		t.Errorf("GET hit round trip allocates %.2f objects/op, want 0", allocs)
	}
}

// TestSetRoundTripAllocs pins the SET round trip at the server's two
// inherent allocations — the copy that retains the value and the entry
// header — with zero on the client side.
func TestSetRoundTripAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates per operation; alloc gate runs without -race")
	}
	c := benchClient(t)
	val := wirePayload(64)
	set := func() {
		if _, err := c.Set(42, val); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 128; i++ {
		set()
	}
	if allocs := testing.AllocsPerRun(400, set); allocs > 2.1 {
		t.Errorf("SET round trip allocates %.2f objects/op, want ≤2 (server copy-to-retain + entry)", allocs)
	}
}

// TestSharedValueAliasingRace exercises the zero-copy value contract under
// the race detector: one connection reads a large key through GetShared
// (the server sends such HIT values as zero-copy segments referencing the
// stored entry) while another connection overwrites the same key. Stored
// values are immutable — a SET stores a fresh copy — so the reader must
// never observe a torn value and the race detector must stay quiet. The
// writer also re-fills its value buffer between SETs, exercising the
// client-side rule that a zero-copy SET value is released at Flush.
func TestSharedValueAliasingRace(t *testing.T) {
	addr := benchServer(t)
	rc, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	wc, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()

	const key, valLen, rounds = uint64(99), 8 << 10, 500
	seed := make([]byte, valLen)
	if _, err := wc.Set(key, seed); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		val := make([]byte, valLen)
		for i := 0; i < rounds; i++ {
			for j := range val {
				val[j] = byte(i)
			}
			if _, err := wc.Set(key, val); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < rounds; i++ {
		v, ok, err := rc.GetShared(key)
		if err != nil || !ok || len(v) != valLen {
			t.Fatalf("read %d: ok=%v len=%d err=%v", i, ok, len(v), err)
		}
		b := v[0]
		for j, got := range v {
			if got != b {
				t.Fatalf("torn value on read %d: v[%d]=%d, v[0]=%d", i, j, got, b)
			}
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// BenchmarkGetRoundTrip measures one unpipelined GET hit over loopback:
// client encode + flush + server decode/lookup/encode + client decode +
// value copy. The allocs/op column is the number the tentpole drives to
// zero (via GetInto/GetShared; plain Get keeps its one copy alloc).
func BenchmarkGetRoundTrip(b *testing.B) {
	c := benchClient(b)
	if _, err := c.Set(42, wirePayload(64)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := c.Get(42); err != nil || !ok {
			b.Fatalf("get: ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkSetRoundTrip measures one unpipelined SET over loopback. The
// server retains the value, so one copy alloc per op is inherent on its
// side; the client side must not add any.
func BenchmarkSetRoundTrip(b *testing.B) {
	c := benchClient(b)
	val := wirePayload(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Set(42, val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetBatchRoundTrip measures a 16-deep pipelined GET batch —
// the shape the load harness drives — priced per key, not per batch.
func BenchmarkGetBatchRoundTrip(b *testing.B) {
	c := benchClient(b)
	keys := make([]uint64, 16)
	for i := range keys {
		keys[i] = uint64(i)
		if _, err := c.Set(keys[i], wirePayload(64)); err != nil {
			b.Fatal(err)
		}
	}
	visit := func(i int, hit bool, value []byte) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.GetBatch(keys, visit); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	opsPerIter := float64(len(keys))
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*opsPerIter), "ns/key")
}

func wirePayload(n int) []byte {
	v := make([]byte, n)
	for i := range v {
		v[i] = byte(i)
	}
	return v
}
