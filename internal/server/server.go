// Package server exposes a concurrent set-associative cache
// (internal/concurrent) over TCP using the wire protocol (internal/wire).
//
// The server is the production half of the paper's motivating use case: a
// sharded cache service whose lock granularity is the bucket. Each
// connection is served by one goroutine; requests are applied directly to
// the shared cache, so cross-connection contention is exactly per-bucket
// lock contention, and the α-tradeoff (fewer slots per bucket → more
// buckets → less contention, but more conflict misses) is measurable from
// the outside with cmd/cacheload.
//
// An online REHASH can be requested over the wire at any time; it uses the
// cache's incremental migration (Section 6.1 of the paper), so live traffic
// continues while items drain from the old hash function to the new one.
//
// Every stored value carries a monotonically increasing per-key version
// (protocol v4). User SETs assign versions and always win; maintenance
// SETs flagged VERSIONED carry the version their writer observed and are
// applied atomically only when strictly newer than the stored one —
// rejections answer VERSION_STALE and count in STATS StaleRepairs. The
// async maintenance queue applies its entries through the same check, so
// its depth no longer widens the window in which a delayed repair could
// reinstate a value a concurrent user SET already replaced.
//
// The server also holds the node's view of the cluster topology: a member
// list stamped with a monotonically increasing epoch, pushed at it by the
// cluster router or a joining peer (TOPOLOGY) and served back to anyone
// who asks (MEMBERS). Every response carries the current epoch, so routers
// piggyback staleness detection on ordinary traffic and refresh only when
// the epoch moves. The server itself never routes — topology is data it
// stores and spreads, which is what lets a client bootstrap a whole
// cluster view from one seed address.
package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/concurrent"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// DefaultRepairQueue is the depth of the bounded queue that async
// maintenance writes (SET with the ASYNC flag) drain through. Deep enough
// that read repair never sheds in healthy operation. The bound is a
// count, not a byte budget: worst-case queued memory is depth × value
// size, so operators running large values should size it down with
// SetRepairQueue.
const DefaultRepairQueue = 4096

// DefaultTombstoneTTL is how long a tombstone outlives the DEL that made
// it before the reaper removes it. The TTL bounds the window in which a
// lagging replica (or a replayed hint) could still carry the deleted key's
// old value: once every repair path has had TTL to run, the tombstone has
// nothing left to suppress. The default is ~10× the cluster's default
// anti-entropy period, so several full sweeps complete before any
// tombstone is reaped. Override with SetTombstoneTTL.
const DefaultTombstoneTTL = 5 * time.Minute

// DefaultTombstoneSweep is how often the background reaper scans for
// expired tombstones once any tombstone exists.
const DefaultTombstoneSweep = 30 * time.Second

// DefaultHintBudget bounds the bytes a node will hold in queued hints
// (HINT op) for dead peers. At the budget the oldest hint is dropped —
// safe, because hints are an optimization over anti-entropy, which
// repairs whatever a dropped hint would have. Override with
// SetHintBudget.
const DefaultHintBudget = 4 << 20

// DefaultHintReplay is how often the background replayer re-attempts
// delivery of queued hints to their targets. Override with
// SetHintReplayInterval (before the first hint arrives).
const DefaultHintReplay = 2 * time.Second

// DefaultSlowOpThreshold is the service time above which an operation is
// recorded in the slow-op ring. Loopback service times are microseconds,
// so 10ms marks something genuinely wrong — a stalled bucket lock, a
// value large enough to hurt, scheduler trouble — without the ring
// churning under healthy load. Override with SetSlowOpThreshold (cached
// -slow-op-threshold).
const DefaultSlowOpThreshold = 10 * time.Millisecond

// entry is the unified record the server stores in the cache: the payload
// plus a monotonically increasing per-key version, or — when born is
// nonzero — a tombstone: the versioned fact that the key was deleted, kept
// so no older copy of the value can be reinstated by delayed maintenance.
// Unconditional (user) SETs assign max(wall-clock nanos, stored+1) —
// per-key monotonic by construction, and wall-clock anchored so versions
// assigned on different nodes for successive writes of the same key
// compare the way their real-time order did. Conditional (VERSIONED)
// writes carry the version the writer observed and store it verbatim, so a
// value keeps its origin version as maintenance copies it between nodes.
// DEL is just the unconditional-write rule producing a tombstone, and a
// replicated tombstone (SET TOMBSTONE) is the conditional rule producing
// one — deletes compete in the same version order as every other write.
type entry struct {
	ver uint64
	// born is zero for a live value; for a tombstone it is the wall-clock
	// nanosecond the tombstone was created here, which starts the reap TTL
	// clock (val is nil). It is creation time on *this node* — a tombstone
	// copied by maintenance gets a fresh born, so its TTL restarts, which
	// only ever delays reaping, never loses the deletion.
	born int64
	val  []byte
}

// tomb reports whether the record is a tombstone.
func (e *entry) tomb() bool { return e.born != 0 }

// repairWrite is one queued async maintenance write. It keeps the SET's
// flags and observed version so the version check runs when the queue
// drains — the apply, however delayed, goes through the same conditional
// path as a synchronous write, which is what keeps queue depth from
// widening the lost-update window. enq stamps admission so the drain can
// record how long the write waited (the REPAIR_WAIT histogram).
type repairWrite struct {
	key   uint64
	val   []byte
	flags wire.SetFlags
	ver   uint64
	enq   time.Time

	// traced/trace carry the originating request's trace context across
	// the queue, so the drain-time apply of a sampled write still records
	// a span joined to the request that caused it — queue wait included.
	traced bool
	trace  wire.TraceContext
}

// Server serves a concurrent.Cache over TCP.
type Server struct {
	cache *concurrent.Cache

	// sets and repairSets split write traffic by the SET flag byte: user
	// writes versus replica maintenance (read repair, warm-up, migration).
	// Keeping them at the server rather than in the cache means repair
	// churn never skews the cache-level counters the α experiments read.
	// staleRepairs counts VERSIONED writes rejected because the stored
	// version was newer — each one a lost-update race the check won.
	sets         atomic.Uint64
	repairSets   atomic.Uint64
	staleRepairs atomic.Uint64

	// Topology state: the member list under topoMu, the epoch mirrored in
	// an atomic so every response handler can stamp it without locking.
	topoMu  sync.Mutex
	members []string
	epoch   atomic.Uint64

	// keysChunk overrides the KEYS stream chunk size (0 = DefaultKeysChunk);
	// tests shrink it to exercise multi-chunk streams cheaply.
	keysChunk atomic.Int64

	// Async maintenance queue (SET ASYNC): created lazily on first use so
	// its depth is configurable, drained by one background goroutine,
	// shedding (and counting) when full so maintenance floods never stall
	// user traffic. repairCh holds a chan repairWrite once created (an
	// atomic.Value because STATS reads its depth concurrently with the
	// lazy creation); repairStop/repairDone bracket the worker's lifetime.
	repairOnce     sync.Once
	repairCh       atomic.Value
	repairDepth    int
	repairDepthSet bool
	repairsShed    atomic.Uint64
	repairStop     chan struct{}
	repairDone     chan struct{}

	// Flight recorder (protocol v5). opHists holds one service-time
	// histogram per opcode, indexed by the op byte; repairWait measures
	// enqueue→apply of async maintenance writes; queueHigh tracks the
	// maintenance queue's high-water depth (the peak STATS' point-in-time
	// RepairQueueDepth misses between polls). All recording is lock-free
	// and allocation-free (internal/telemetry), so it stays on even under
	// benchmark load.
	opHists       [int(wire.OpHint) + 1]telemetry.Histogram
	repairWait    telemetry.Histogram
	queueHigh     telemetry.HighWater
	bytesIn       telemetry.Counter
	bytesOut      telemetry.Counter
	connsAccepted telemetry.Counter
	slowLog       *telemetry.SlowLog
	slowThreshold atomic.Int64 // nanoseconds; ≤0 disables the slow-op log

	// Lease table (protocol v7, see lease.go): per-key fill-lease state
	// under its own mutex. leaseLive (outstanding tokens) and leaseEntries
	// (table size) are mirrored in atomics so the SET and DEL hot paths
	// can skip the mutex entirely while no lease exists — a workload that
	// never sends GETL pays one atomic load per write, nothing more.
	leaseMu       sync.Mutex
	leases        map[uint64]*lease
	leaseTokens   uint64 // last token issued; ++ under leaseMu, so never 0
	leaseLive     atomic.Int64
	leaseEntries  atomic.Int64
	leaseTTL      atomic.Int64 // nanoseconds
	leasesGranted atomic.Uint64
	leasesExpired atomic.Uint64
	staleServes   atomic.Uint64

	// Tombstone state (protocol v8). tombstones approximates the live
	// tombstone count (a policy eviction of a tombstone is invisible here,
	// so the gauge can read high until the next reap scan resyncs it);
	// tombstonesReaped counts TTL expiries the reaper removed. The reaper
	// goroutine starts lazily on the first tombstone and stops with the
	// server.
	tombstones       atomic.Int64
	tombstonesReaped atomic.Uint64
	tombstoneTTL     atomic.Int64 // nanoseconds
	reapOnce         sync.Once
	reapStarted      atomic.Bool
	reapDone         chan struct{}

	// Hinted-handoff state (protocol v8): writes a router could not land
	// on a dead owner, parked here by a live peer (HINT op) and replayed —
	// as conditional versioned writes — when the owner answers again. One
	// FIFO across targets under hintMu, byte-budgeted, oldest dropped at
	// the budget. The replayer goroutine starts lazily on the first hint.
	hintMu        sync.Mutex
	hints         []hint
	hintBytes     int
	hintBudget    int
	hintBudgetSet bool
	hintsQueued   atomic.Uint64
	hintsReplayed atomic.Uint64
	hintInterval  atomic.Int64 // nanoseconds
	hintOnce      sync.Once
	hintStarted   atomic.Bool
	hintDone      chan struct{}
	hintDial      func(addr string) (*wire.Client, error)

	// Tracing and hot-key attribution (protocol v6). spans retains one
	// record per *sampled* traced request (plus drained async writes on a
	// sampled trace's behalf); hotKeys holds one always-on space-saving
	// sketch per traffic class, indexed by the wire hot-key class byte.
	// Both record allocation-free, like the rest of the flight recorder.
	spans   *telemetry.SpanRing
	hotKeys [int(wire.HotEvict) + 1]*telemetry.TopK

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New wraps cache in a server. The cache may be shared with in-process
// users; the server adds no locking of its own beyond the cache's.
func New(cache *concurrent.Cache) *Server {
	s := &Server{
		cache:      cache,
		conns:      make(map[net.Conn]struct{}),
		repairStop: make(chan struct{}),
		repairDone: make(chan struct{}),
		reapDone:   make(chan struct{}),
		hintDone:   make(chan struct{}),
		hintDial:   wire.Dial,
		slowLog:    telemetry.NewSlowLog(0),
		spans:      telemetry.NewSpanRing(0),
	}
	for class := wire.HotGet; class <= wire.HotEvict; class++ {
		s.hotKeys[class] = telemetry.NewTopK(0)
	}
	s.slowThreshold.Store(int64(DefaultSlowOpThreshold))
	s.leaseTTL.Store(int64(DefaultLeaseTTL))
	s.tombstoneTTL.Store(int64(DefaultTombstoneTTL))
	s.hintInterval.Store(int64(DefaultHintReplay))
	return s
}

// SetTombstoneTTL configures how long tombstones survive before the
// reaper removes them; d ≤ 0 restores DefaultTombstoneTTL.
func (s *Server) SetTombstoneTTL(d time.Duration) {
	if d <= 0 {
		d = DefaultTombstoneTTL
	}
	s.tombstoneTTL.Store(int64(d))
}

// SetHintBudget configures the byte budget for queued hints (n == 0
// disables hint storage: every HINT is accepted and dropped). Must be
// called before the server receives traffic; the default is
// DefaultHintBudget.
func (s *Server) SetHintBudget(n int) {
	s.hintBudget = n
	s.hintBudgetSet = true
}

// SetHintReplayInterval configures how often queued hints are re-attempted;
// d ≤ 0 restores DefaultHintReplay. Must be set before the first hint
// arrives (the replayer reads it once at start).
func (s *Server) SetHintReplayInterval(d time.Duration) {
	if d <= 0 {
		d = DefaultHintReplay
	}
	s.hintInterval.Store(int64(d))
}

// SetSlowOpThreshold configures the service time above which an op is
// recorded in the slow-op ring; d ≤ 0 disables the ring. The default is
// DefaultSlowOpThreshold.
func (s *Server) SetSlowOpThreshold(d time.Duration) { s.slowThreshold.Store(int64(d)) }

// SetKeysChunk overrides the number of keys per KEYS stream frame (0
// restores wire.DefaultKeysChunk). Tests shrink it to exercise multi-chunk
// streams without millions of residents.
func (s *Server) SetKeysChunk(n int) { s.keysChunk.Store(int64(n)) }

// SetRepairQueue configures the async maintenance queue depth. n > 0 sets
// the depth, n == 0 disables the queue entirely so every ASYNC write is
// shed (a test hook for the backpressure path). Must be called before the
// server receives traffic; the default is DefaultRepairQueue.
func (s *Server) SetRepairQueue(n int) {
	s.repairDepth = n
	s.repairDepthSet = true
}

// Topology returns the server's current cluster view. A server that was
// never told one reports epoch 0 and no members.
func (s *Server) Topology() wire.Topology {
	s.topoMu.Lock()
	defer s.topoMu.Unlock()
	return wire.Topology{Epoch: s.epoch.Load(), Members: append([]string(nil), s.members...)}
}

// SetTopology unconditionally installs t as the server's cluster view;
// cmd/cached uses it to seed a standalone node with its own address. Peers
// pushing over the wire go through the adoption rule instead (OfferTopology).
func (s *Server) SetTopology(t wire.Topology) {
	s.topoMu.Lock()
	defer s.topoMu.Unlock()
	s.members = append([]string(nil), t.Members...)
	s.epoch.Store(t.Epoch)
}

// OfferTopology applies the wire adoption rule to a pushed topology: adopt
// it when it is strictly newer than the held view, or when no view is held
// yet; otherwise keep the current one. Offers with no members are never
// adopted — holding a bare epoch over an empty member list would let a
// later, lower epoch "win" and roll the monotonic epoch backwards. It
// returns the view the server holds after the offer, which the TOPOLOGY
// response reports so a losing pusher learns the newer topology in the
// same round trip.
func (s *Server) OfferTopology(t wire.Topology) wire.Topology {
	s.topoMu.Lock()
	defer s.topoMu.Unlock()
	if len(t.Members) > 0 && (t.Epoch > s.epoch.Load() || len(s.members) == 0) {
		s.members = append([]string(nil), t.Members...)
		s.epoch.Store(t.Epoch)
	}
	return wire.Topology{Epoch: s.epoch.Load(), Members: append([]string(nil), s.members...)}
}

// Cache returns the underlying cache (used by tests and embedders).
func (s *Server) Cache() *concurrent.Cache { return s.cache }

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It always closes ln.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Addr returns the listening address, once Serve has been called.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes all live connections, and waits for their
// handlers — and the async maintenance worker, if one ever started — to
// finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	close(s.repairStop)
	if s.repairQueue() != nil {
		<-s.repairDone
	}
	if s.reapStarted.Load() {
		<-s.reapDone
	}
	if s.hintStarted.Load() {
		<-s.hintDone
	}
	return err
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()

	s.connsAccepted.Add(1)
	r := wire.NewReaderSize(countingReader{conn, &s.bytesIn}, connReadBufSize)
	w := wire.NewWriter(countingWriter{conn, &s.bytesOut})
	if err := r.ReadPreamble(); err != nil {
		if errors.Is(err, wire.ErrVersionMismatch) {
			// Tell the peer *why* before closing: the ERROR frame layout is
			// stable across revisions, so even an older client reads the
			// documented version error instead of a bare EOF.
			w.WriteResponse(wire.Response{
				Status: wire.StatusError, Epoch: s.epoch.Load(), Err: err.Error(),
			})
			w.Flush()
		}
		return
	}
	for {
		req, err := r.ReadRequest()
		if err != nil {
			return // clean EOF or protocol error; either way the conn is done
		}
		// Service time: request decoded → response encoded. The clock
		// starts after ReadRequest so idle wait between pipelined requests
		// never pollutes the histograms.
		t0 := time.Now()
		var ver uint64
		status := wire.StatusKeys
		if req.Op == wire.OpKeys {
			// KEYS answers with a stream of chunk frames, not one response.
			if err := s.streamKeys(w); err != nil {
				return
			}
		} else {
			resp := s.apply(req)
			resp.Epoch = s.epoch.Load()
			ver = resp.Version
			status = resp.Status
			if err := w.WriteResponse(resp); err != nil {
				return
			}
		}
		s.observe(req, status, ver, time.Since(t0))
		// Pipelining: only pay the syscall when the client has no more
		// requests already buffered.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// connReadBufSize sizes each connection's wire.Reader stream buffer.
// Chosen from measurement, not defaults (PR 9 / hypotheses/H3): request
// frames are tiny (a GET is 13 bytes framed), so what matters is how
// many pipelined requests one read syscall drains. 64 KiB holds ~4500
// GET frames or a ~1000-deep batch of 64-byte SETs — comfortably above
// the deepest pipeline the harnesses drive — and costs 64 KiB per
// connection, which at the accept rates this server sees is noise next
// to the cache itself.
const connReadBufSize = 64 << 10

// countingReader and countingWriter sit between the connection and the
// wire codecs, feeding the BYTES_IN/BYTES_OUT counters. They count per
// syscall (the codec layers above batch frames), so the cost is one
// atomic add per read/write — and one per whole vectored flush — not
// per byte or per frame.
type countingReader struct {
	r io.Reader
	c *telemetry.Counter
}

// Read forwards to the wrapped reader and counts the bytes delivered.
func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(uint64(n))
	return n, err
}

type countingWriter struct {
	w io.Writer
	c *telemetry.Counter
}

// Write forwards to the wrapped writer and counts the bytes sent.
func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(uint64(n))
	return n, err
}

// WriteBuffers lets the wire.Writer's corked flush reach the connection
// as one vectored write (writev) instead of one Write syscall per
// segment — without it, wrapping the conn in a byte counter would undo
// the batching the codec set up.
func (cw countingWriter) WriteBuffers(v *net.Buffers) (int64, error) {
	n, err := v.WriteTo(cw.w)
	cw.c.Add(uint64(n))
	return n, err
}

// observe records one request's service time into the per-op histogram,
// its key into the op class's hot-key sketch, a span when the request
// was sampled, and — when it crossed the slow threshold — a slow-op
// record carrying the trace ID (all-zero when untraced).
func (s *Server) observe(req wire.Request, status wire.Status, ver uint64, d time.Duration) {
	op := int(req.Op)
	if op <= 0 || op >= len(s.opHists) {
		return // unknown op: answered with ERROR, nothing to attribute
	}
	s.opHists[op].Record(d)
	var kh uint64
	switch req.Op {
	case wire.OpGet, wire.OpGetLease:
		kh = telemetry.HashKey(req.Key)
		s.hotKeys[wire.HotGet].Record(kh)
	case wire.OpSet:
		kh = telemetry.HashKey(req.Key)
		// The SET class tracks user traffic; maintenance re-SETs of a key
		// the cluster already ranked hot would double-count it.
		if req.Flags&wire.SetFlagRepair == 0 {
			s.hotKeys[wire.HotSet].Record(kh)
		}
	case wire.OpDel:
		kh = telemetry.HashKey(req.Key)
		s.hotKeys[wire.HotDel].Record(kh)
	}
	if req.Traced && req.Trace.Sampled() {
		s.spans.Append(telemetry.Span{
			Op:            byte(req.Op),
			Status:        byte(status),
			TraceID:       req.Trace.ID,
			KeyHash:       kh,
			DurationNanos: uint64(d),
			UnixNanos:     uint64(time.Now().UnixNano()),
		})
	}
	thr := s.slowThreshold.Load()
	if thr <= 0 || int64(d) < thr {
		return
	}
	s.slowLog.Append(telemetry.SlowOp{
		Op:            byte(req.Op),
		KeyHash:       kh,
		DurationNanos: uint64(d),
		Version:       ver,
		UnixNanos:     uint64(time.Now().UnixNano()),
		TraceID:       req.Trace.ID,
	})
}

// MetricsSnapshot assembles the flight-recorder sections selected by
// flags — the payload of a METRICS response, also served as JSON by
// cached's -debug-addr endpoint. Histograms with no samples are omitted.
func (s *Server) MetricsSnapshot(flags wire.MetricsFlags) *wire.Metrics {
	m := &wire.Metrics{Flags: flags}
	if flags&wire.MetricsHistograms != 0 {
		for op := int(wire.OpGet); op < len(s.opHists); op++ {
			if snap := s.opHists[op].Snapshot(); snap.Count > 0 {
				m.Hists = append(m.Hists, wire.OpHist{ID: byte(op), Snap: snap})
			}
		}
		if snap := s.repairWait.Snapshot(); snap.Count > 0 {
			m.Hists = append(m.Hists, wire.OpHist{ID: wire.HistRepairWait, Snap: snap})
		}
	}
	if flags&wire.MetricsCounters != 0 {
		m.Counters = []wire.MetricCounter{
			{ID: wire.CounterBytesIn, Value: s.bytesIn.Load()},
			{ID: wire.CounterBytesOut, Value: s.bytesOut.Load()},
			{ID: wire.CounterSlowOps, Value: s.slowLog.Total()},
			{ID: wire.CounterConns, Value: s.connsAccepted.Load()},
		}
	}
	if flags&wire.MetricsSlowOps != 0 {
		m.SlowOps = s.slowLog.Snapshot()
	}
	if flags&wire.MetricsTraces != 0 {
		m.Spans = s.spans.Snapshot()
	}
	if flags&wire.MetricsHotKeys != 0 {
		for class := wire.HotGet; class <= wire.HotEvict; class++ {
			if snap := s.hotKeys[class].Snapshot(); len(snap) > 0 {
				m.HotKeys = append(m.HotKeys, wire.HotKeyClass{Class: class, Keys: snap.Top(wire.MaxHotKeys)})
			}
		}
	}
	return m
}

// streamKeys writes the chunked KEYS response: a racy snapshot of the
// resident records — key, version, tombstone bit — split into bounded
// frames, ending in an empty terminator frame. Chunking keeps every frame
// far below MaxFrame, so a node's enumerable residency is no longer capped
// by the frame limit. Carrying versions and tombstones makes one KEYS pass
// sufficient for replica comparison: anti-entropy diffs two streams
// without a per-key read.
func (s *Server) streamKeys(w *wire.Writer) error {
	recs := make([]wire.KeyRec, 0, s.cache.Len())
	s.cache.Entries(func(key uint64, v interface{}) {
		rec := wire.KeyRec{Key: key}
		if e, ok := v.(*entry); ok {
			rec.Version = e.ver
			rec.Tombstone = e.tomb()
		}
		recs = append(recs, rec)
	})
	chunk := int(s.keysChunk.Load())
	if chunk <= 0 {
		chunk = wire.DefaultKeysChunk
	}
	for off := 0; off < len(recs); off += chunk {
		end := off + chunk
		if end > len(recs) {
			end = len(recs)
		}
		if err := w.WriteResponse(wire.Response{
			Status: wire.StatusKeys, Keys: recs[off:end], Epoch: s.epoch.Load(),
		}); err != nil {
			return err
		}
	}
	return w.WriteResponse(wire.Response{Status: wire.StatusKeys, Epoch: s.epoch.Load()})
}

// apply executes one request against the cache.
func (s *Server) apply(req wire.Request) wire.Response {
	switch req.Op {
	case wire.OpGet, wire.OpGetLease:
		v, ok := s.cache.Get(req.Key)
		if !ok {
			if req.Op == wire.OpGetLease {
				return s.leaseMiss(req.Key)
			}
			return wire.Response{Status: wire.StatusMiss}
		}
		switch e := v.(type) {
		case *entry:
			if e.tomb() {
				// A tombstone is a resident record of an absence: reads see a
				// miss (and may take a fresh fill lease — a post-delete load
				// from the origin is a legitimate new write, it is only
				// pre-delete copies the tombstone exists to block).
				if req.Op == wire.OpGetLease {
					return s.leaseMiss(req.Key)
				}
				return wire.Response{Status: wire.StatusMiss}
			}
			return wire.Response{Status: wire.StatusHit, Value: e.val, Version: e.ver}
		case []byte:
			// Values stored by in-process embedders sharing the cache carry
			// no version; serve them at version 0 so any versioned write
			// supersedes them.
			return wire.Response{Status: wire.StatusHit, Value: e}
		default:
			return wire.Response{Status: wire.StatusError,
				Err: fmt.Sprintf("non-wire value of type %T cached under key %d", v, req.Key)}
		}
	case wire.OpSet:
		if req.Flags&wire.SetFlagRepair != 0 {
			s.repairSets.Add(1)
		} else {
			s.sets.Add(1)
		}
		// The request value aliases the reader's scratch buffer; copy before
		// it escapes into the cache or the maintenance queue.
		val := append([]byte(nil), req.Value...)
		if req.Flags&wire.SetFlagLease != 0 {
			return s.leaseFill(req.Key, req.LeaseToken, val)
		}
		if req.Flags&wire.SetFlagAsync != 0 {
			// OK means accepted: the write is applied (or shed) by the
			// background worker, so maintenance floods never stall the
			// request path. Eviction and the version outcome are unknowable
			// here; a VERSIONED write rejected at drain time still counts in
			// StaleRepairs.
			s.enqueueRepair(repairWrite{
				key: req.Key, val: val, flags: req.Flags, ver: req.Version, enq: time.Now(),
				traced: req.Traced, trace: req.Trace,
			})
			return wire.Response{Status: wire.StatusOK}
		}
		applied, ver, evicted := s.store(req.Key, req.Flags, req.Version, val)
		if !applied {
			return wire.Response{Status: wire.StatusVersionStale, Version: ver}
		}
		return wire.Response{Status: wire.StatusOK, Evicted: evicted, Version: ver}
	case wire.OpDel:
		// Drop the key's lease state *before* the tombstone store: killing
		// the outstanding token first means no fill that observed the
		// pre-delete world can land after the delete, and the retained
		// stale copy can never be hinted again. (A lease granted *after*
		// the tombstone is a fresh post-delete load and is allowed to
		// overwrite it — see storeLeaseFill.)
		if s.leaseEntries.Load() > 0 {
			s.dropLease(req.Key)
		}
		return s.applyDel(req.Key)
	case wire.OpHint:
		// The value aliases the reader's scratch buffer; copy before it
		// outlives this request in the hint queue.
		var val []byte
		if len(req.Value) > 0 {
			val = append([]byte(nil), req.Value...)
		}
		s.queueHint(req.Target, req.Key, req.Tombstone, req.Version, val)
		return wire.Response{Status: wire.StatusOK}
	case wire.OpStats:
		return wire.Response{Status: wire.StatusStats, Stats: s.stats(req.Detail)}
	case wire.OpRehash:
		s.cache.Rehash()
		return wire.Response{Status: wire.StatusOK}
	case wire.OpMembers:
		return wire.Response{Status: wire.StatusMembers, Topology: s.Topology()}
	case wire.OpTopology:
		return wire.Response{Status: wire.StatusMembers, Topology: s.OfferTopology(req.Topology)}
	case wire.OpMetrics:
		return wire.Response{Status: wire.StatusMetrics, Metrics: s.MetricsSnapshot(req.MetricsFlags)}
	default:
		return wire.Response{Status: wire.StatusError, Err: fmt.Sprintf("unknown op %v", req.Op)}
	}
}

// store applies one SET to the cache as a single atomic read-check-write
// under the owning bucket's lock (concurrent.Cache.Update), so no
// concurrent write can interleave between the version comparison and the
// overwrite.
//
// An unconditional SET (no VERSIONED flag) always stores, assigning the
// key the version max(wall-clock nanos, stored+1) — strictly above
// everything this node ever held for the key, and above any version an
// earlier write of the key was assigned elsewhere whose real-time order
// precedes this one. A VERSIONED SET stores its carried version verbatim,
// and only when that is strictly newer than the stored one; a rejection
// reports the winning version and bumps staleRepairs. A TOMBSTONE SET is
// the VERSIONED rule storing a tombstone record instead of a value —
// replicated deletes lose to anything newer, exactly like replicated
// writes.
func (s *Server) store(key uint64, flags wire.SetFlags, reqVer uint64, val []byte) (applied bool, ver uint64, evicted bool) {
	conditional := flags&wire.SetFlagVersioned != 0
	tombstone := flags&wire.SetFlagTombstone != 0
	now := time.Now().UnixNano()
	var wasTomb bool
	stored, _, evicted := s.cache.Update(key, func(old interface{}, present bool) (interface{}, bool) {
		var cur uint64
		wasTomb = false
		if present {
			if e, ok := old.(*entry); ok {
				cur = e.ver
				wasTomb = e.tomb()
			}
		}
		if conditional {
			if present && reqVer <= cur {
				ver = cur
				return nil, false
			}
			ver = reqVer
			if tombstone {
				return &entry{ver: ver, born: now}, true
			}
			return &entry{ver: ver, val: val}, true
		}
		ver = uint64(now)
		if ver <= cur {
			ver = cur + 1
		}
		return &entry{ver: ver, val: val}, true
	})
	if !stored {
		s.staleRepairs.Add(1)
		return false, ver, false
	}
	s.noteTombstoneFlip(tombstone, wasTomb)
	if evicted {
		// Conflict-pressure attribution: the EVICT class ranks keys whose
		// writes displace residents, the observable proxy for bucket
		// conflict pressure (the α tradeoff, seen per key).
		s.hotKeys[wire.HotEvict].Record(telemetry.HashKey(key))
	}
	// An applied write supersedes any fill lease in flight for the key:
	// kill its token and refresh the retained stale copy (lease.go) — or,
	// for an applied tombstone, drop the entry outright (delete semantics:
	// nothing the table retains may outlive the deletion). The atomic gate
	// keeps lease-free workloads off the table mutex.
	if s.leaseEntries.Load() > 0 {
		if tombstone {
			s.dropLease(key)
		} else {
			s.invalidateLease(key, ver, val)
		}
	}
	return true, ver, evicted
}

// applyDel executes DEL as an unconditional versioned write of a
// tombstone: the key's history ends in a record that says "deleted at
// version v" rather than in silence, so any maintenance copy of an older
// value — delayed repair, warm-up chunk, replayed hint, anti-entropy —
// loses the version comparison instead of resurrecting the value. DEL
// always answers OK; Evicted reports whether a live value was present, and
// Version carries the tombstone's assigned version. The tombstone is
// written even when the key was absent here: this replica may simply be
// the one that missed the write, and the tombstone is what stops
// anti-entropy from copying the value back from a replica that has it.
func (s *Server) applyDel(key uint64) wire.Response {
	now := time.Now().UnixNano()
	var present, wasTomb bool
	var ver uint64
	_, _, evicted := s.cache.Update(key, func(old interface{}, has bool) (interface{}, bool) {
		var cur uint64
		wasTomb = false
		if has {
			if e, ok := old.(*entry); ok {
				cur = e.ver
				wasTomb = e.tomb()
			}
		}
		present = has && !wasTomb
		ver = uint64(now)
		if ver <= cur {
			ver = cur + 1
		}
		return &entry{ver: ver, born: now}, true
	})
	s.noteTombstoneFlip(true, wasTomb)
	if evicted {
		s.hotKeys[wire.HotEvict].Record(telemetry.HashKey(key))
	}
	return wire.Response{Status: wire.StatusOK, Evicted: present, Version: ver}
}

// noteTombstoneFlip maintains the tombstone gauge across an applied write
// and lazily starts the reaper the first time a tombstone exists.
func (s *Server) noteTombstoneFlip(isTomb, wasTomb bool) {
	if isTomb == wasTomb {
		return
	}
	if isTomb {
		s.tombstones.Add(1)
		s.startReaper()
	} else {
		s.tombstones.Add(-1)
	}
}

// startReaper launches the background tombstone reaper (once).
func (s *Server) startReaper() {
	s.reapOnce.Do(func() {
		s.reapStarted.Store(true)
		go func() {
			defer close(s.reapDone)
			t := time.NewTicker(DefaultTombstoneSweep)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.ReapTombstones()
				case <-s.repairStop:
					return
				}
			}
		}()
	})
}

// ReapTombstones removes every tombstone older than the tombstone TTL and
// returns how many it reaped. The scan snapshots expired keys bucket by
// bucket, then removes each with a conditional delete that re-checks the
// record under the bucket lock — a key revived (or re-deleted, restarting
// its TTL) between scan and delete is left alone. The sweep also resyncs
// the tombstone gauge, which can drift high when cache policy evicts a
// tombstone wholesale. Runs on the background ticker; exported so tests
// and operators can force a deterministic sweep.
func (s *Server) ReapTombstones() int {
	ttl := time.Duration(s.tombstoneTTL.Load())
	cut := time.Now().Add(-ttl).UnixNano()
	var expired []uint64
	live := int64(0)
	s.cache.Entries(func(key uint64, v interface{}) {
		if e, ok := v.(*entry); ok && e.tomb() {
			if e.born <= cut {
				expired = append(expired, key)
			} else {
				live++
			}
		}
	})
	n := 0
	for _, key := range expired {
		if s.cache.DeleteIf(key, func(v interface{}) bool {
			e, ok := v.(*entry)
			return ok && e.tomb() && e.born <= cut
		}) {
			n++
		}
	}
	if n > 0 {
		s.tombstonesReaped.Add(uint64(n))
	}
	// Resync rather than decrement: the scan counted what is actually
	// resident, which silently repairs any drift from policy evictions.
	s.tombstones.Store(live + int64(len(expired)-n))
	return n
}

// hint is one parked write awaiting a dead owner's return: the target
// that should hold it, and the versioned record (value or tombstone) to
// replay there as a conditional versioned write. Replay is idempotent —
// the target's version check rejects anything it already has newer.
type hint struct {
	target string
	key    uint64
	ver    uint64
	tomb   bool
	val    []byte
}

// hintCost is a hint's accounting size against the byte budget: the value
// plus a fixed overhead so a flood of tiny (or tombstone) hints cannot
// queue unboundedly just because the values are empty.
func hintCost(h hint) int { return len(h.val) + 64 }

// queueHint parks one hinted write for target, dropping the oldest queued
// hints when the byte budget is exceeded (dropping is safe: anti-entropy
// repairs whatever a hint would have). Starts the replayer on first use.
func (s *Server) queueHint(target string, key uint64, tomb bool, ver uint64, val []byte) {
	budget := s.hintBudget
	if !s.hintBudgetSet {
		budget = DefaultHintBudget
	}
	h := hint{target: target, key: key, ver: ver, tomb: tomb, val: val}
	s.hintMu.Lock()
	s.hints = append(s.hints, h)
	s.hintBytes += hintCost(h)
	for s.hintBytes > budget && len(s.hints) > 0 {
		s.hintBytes -= hintCost(s.hints[0])
		s.hints = s.hints[1:]
	}
	s.hintMu.Unlock()
	s.hintsQueued.Add(1)
	s.startHintReplayer()
}

// startHintReplayer launches the background hint replayer (once).
func (s *Server) startHintReplayer() {
	s.hintOnce.Do(func() {
		s.hintStarted.Store(true)
		interval := time.Duration(s.hintInterval.Load())
		go func() {
			defer close(s.hintDone)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.ReplayHints()
				case <-s.repairStop:
					return
				}
			}
		}()
	})
}

// ReplayHints attempts delivery of every queued hint to its target, and
// returns how many landed. A target that cannot be dialed keeps its hints
// for the next attempt; a response — OK or VERSION_STALE alike — counts
// the hint replayed, because a stale rejection means the target already
// holds something newer, which is the same outcome delivered. Runs on the
// background ticker; exported so tests and operators can force a
// deterministic replay.
func (s *Server) ReplayHints() int {
	total := 0
	for _, target := range s.hintTargets() {
		total += s.replayTarget(target)
	}
	return total
}

// hintTargets returns the distinct targets with queued hints, in
// first-queued order.
func (s *Server) hintTargets() []string {
	s.hintMu.Lock()
	defer s.hintMu.Unlock()
	var out []string
	for _, h := range s.hints {
		seen := false
		for _, t := range out {
			if t == h.target {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, h.target)
		}
	}
	return out
}

// takeHints removes and returns every queued hint for target, preserving
// order. The caller replays them outside the lock and requeues on failure
// — conditional versioned replay makes a duplicate or reordered delivery
// harmless, so crashing between take and replay costs only the hints.
func (s *Server) takeHints(target string) []hint {
	s.hintMu.Lock()
	defer s.hintMu.Unlock()
	var took []hint
	rest := s.hints[:0]
	for _, h := range s.hints {
		if h.target == target {
			took = append(took, h)
			s.hintBytes -= hintCost(h)
		} else {
			rest = append(rest, h)
		}
	}
	s.hints = rest
	return took
}

// requeueHints returns undelivered hints to the queue (at the back —
// order across requeues is irrelevant, the version check arbitrates).
func (s *Server) requeueHints(hints []hint) {
	s.hintMu.Lock()
	defer s.hintMu.Unlock()
	for _, h := range hints {
		s.hints = append(s.hints, h)
		s.hintBytes += hintCost(h)
	}
}

// replayTarget delivers target's queued hints as one pipelined batch of
// conditional versioned maintenance writes, returning how many were
// acknowledged. Any transport failure requeues the whole batch.
func (s *Server) replayTarget(target string) int {
	hints := s.takeHints(target)
	if len(hints) == 0 {
		return 0
	}
	cl, err := s.hintDial(target)
	if err != nil {
		s.requeueHints(hints)
		return 0
	}
	defer cl.Close()
	for _, h := range hints {
		if h.tomb {
			err = cl.EnqueueSetTombstone(h.key, wire.SetFlagRepair, h.ver)
		} else {
			err = cl.EnqueueSetVersioned(h.key, wire.SetFlagRepair, h.ver, h.val)
		}
		if err != nil {
			s.requeueHints(hints)
			return 0
		}
	}
	if err := cl.Flush(); err != nil {
		s.requeueHints(hints)
		return 0
	}
	for i := range hints {
		if _, err := cl.ReadResponse(); err != nil {
			s.requeueHints(hints[i:])
			n := i
			s.hintsReplayed.Add(uint64(n))
			return n
		}
	}
	s.hintsReplayed.Add(uint64(len(hints)))
	return len(hints)
}

// HintBacklog reports the queued hint count and byte total (test hook).
func (s *Server) HintBacklog() (n, bytes int) {
	s.hintMu.Lock()
	defer s.hintMu.Unlock()
	return len(s.hints), s.hintBytes
}

// repairQueue returns the async maintenance channel, or nil when none was
// created (no async write arrived yet, or the queue is disabled).
func (s *Server) repairQueue() chan repairWrite {
	ch, _ := s.repairCh.Load().(chan repairWrite)
	return ch
}

// enqueueRepair hands an async maintenance write to the background worker,
// shedding it (counted) when the queue is full or disabled.
func (s *Server) enqueueRepair(w repairWrite) {
	s.repairOnce.Do(func() {
		depth := s.repairDepth
		if !s.repairDepthSet {
			depth = DefaultRepairQueue
		}
		if depth <= 0 {
			return // queue disabled: every async write sheds
		}
		ch := make(chan repairWrite, depth)
		s.repairCh.Store(ch)
		go s.repairLoop(ch)
	})
	ch := s.repairQueue()
	if ch == nil {
		s.repairsShed.Add(1)
		return
	}
	select {
	case ch <- w:
		// High-water sample. len(ch) can already read 0 if the worker
		// drained instantly, but the depth was ≥1 the moment the send
		// landed, so clamp — the mark deterministically reflects that the
		// queue was ever occupied and never overcounts.
		d := uint64(len(ch))
		if d == 0 {
			d = 1
		}
		s.queueHigh.Set(d)
	default:
		s.repairsShed.Add(1)
	}
}

// repairLoop drains the async maintenance queue until Close, then applies
// whatever is already queued and exits. Queued writes go through the same
// conditional store as synchronous ones, so a VERSIONED entry that sat in
// the queue while a user SET superseded it is rejected at drain time — the
// queue delays maintenance writes, it no longer widens the window in which
// they can clobber fresher state.
func (s *Server) repairLoop(ch chan repairWrite) {
	defer close(s.repairDone)
	for {
		select {
		case w := <-ch:
			s.drainRepair(w)
		case <-s.repairStop:
			for {
				select {
				case w := <-ch:
					s.drainRepair(w)
				default:
					return
				}
			}
		}
	}
}

// drainRepair applies one queued async maintenance write. When the
// originating request was sampled, the apply records a span joined to
// that request's trace ID, with QueueWaitNanos separating time spent
// sitting in the queue from the apply itself — the deferred half of a
// traced write's cluster-wide path.
func (s *Server) drainRepair(w repairWrite) {
	wait := time.Since(w.enq)
	s.repairWait.Record(wait)
	t0 := time.Now()
	applied, _, _ := s.store(w.key, w.flags, w.ver, w.val)
	if w.traced && w.trace.Sampled() {
		status := wire.StatusOK
		if !applied {
			status = wire.StatusVersionStale
		}
		s.spans.Append(telemetry.Span{
			Op:             byte(wire.OpSet),
			Status:         byte(status),
			TraceID:        w.trace.ID,
			KeyHash:        telemetry.HashKey(w.key),
			QueueWaitNanos: uint64(wait),
			DurationNanos:  uint64(time.Since(t0)),
			UnixNanos:      uint64(time.Now().UnixNano()),
		})
	}
}

func (s *Server) stats(detail bool) *wire.Stats {
	snap := s.cache.Snapshot()
	st := &wire.Stats{
		Hits:                 snap.Hits,
		Misses:               snap.Misses,
		Evictions:            snap.Evictions,
		ConflictEvictions:    snap.ConflictEvictions,
		FlushEvictions:       snap.FlushEvictions,
		Rehashes:             snap.Rehashes,
		Pending:              uint64(snap.Pending),
		Len:                  uint64(snap.Len),
		Capacity:             uint64(snap.Capacity),
		Alpha:                uint64(snap.Alpha),
		Buckets:              uint64(snap.Buckets),
		Sets:                 s.sets.Load(),
		RepairSets:           s.repairSets.Load(),
		RepairsShed:          s.repairsShed.Load(),
		StaleRepairs:         s.staleRepairs.Load(),
		RepairQueueHighWater: s.queueHigh.High(),
		LeasesGranted:        s.leasesGranted.Load(),
		LeasesExpired:        s.leasesExpired.Load(),
		StaleServes:          s.staleServes.Load(),
		TombstonesReaped:     s.tombstonesReaped.Load(),
		HintsQueued:          s.hintsQueued.Load(),
		HintsReplayed:        s.hintsReplayed.Load(),
		Migrating:            snap.Migrating,
	}
	if t := s.tombstones.Load(); t > 0 {
		st.Tombstones = uint64(t)
	}
	if ch := s.repairQueue(); ch != nil {
		st.RepairQueueDepth = uint64(len(ch))
	}
	if detail {
		shards := s.cache.ShardStats()
		st.Shards = make([]wire.ShardStat, len(shards))
		for i, sh := range shards {
			st.Shards[i] = wire.ShardStat{
				Hits: sh.Hits, Misses: sh.Misses, Evictions: sh.Evictions, Len: uint64(sh.Len),
			}
		}
	}
	return st
}
