// Package server exposes a concurrent set-associative cache
// (internal/concurrent) over TCP using the wire protocol (internal/wire).
//
// The server is the production half of the paper's motivating use case: a
// sharded cache service whose lock granularity is the bucket. Each
// connection is served by one goroutine; requests are applied directly to
// the shared cache, so cross-connection contention is exactly per-bucket
// lock contention, and the α-tradeoff (fewer slots per bucket → more
// buckets → less contention, but more conflict misses) is measurable from
// the outside with cmd/cacheload.
//
// An online REHASH can be requested over the wire at any time; it uses the
// cache's incremental migration (Section 6.1 of the paper), so live traffic
// continues while items drain from the old hash function to the new one.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/concurrent"
	"repro/internal/wire"
)

// Server serves a concurrent.Cache over TCP.
type Server struct {
	cache *concurrent.Cache

	// sets and repairSets split write traffic by the SET flag byte: user
	// writes versus replica maintenance (read repair, migration). Keeping
	// them at the server rather than in the cache means repair churn never
	// skews the cache-level counters the α experiments read.
	sets       atomic.Uint64
	repairSets atomic.Uint64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New wraps cache in a server. The cache may be shared with in-process
// users; the server adds no locking of its own beyond the cache's.
func New(cache *concurrent.Cache) *Server {
	return &Server{cache: cache, conns: make(map[net.Conn]struct{})}
}

// Cache returns the underlying cache (used by tests and embedders).
func (s *Server) Cache() *concurrent.Cache { return s.cache }

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It always closes ln.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Addr returns the listening address, once Serve has been called.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes all live connections, and waits for their
// handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()

	r := wire.NewReader(conn)
	w := wire.NewWriter(conn)
	if err := r.ReadPreamble(); err != nil {
		return
	}
	for {
		req, err := r.ReadRequest()
		if err != nil {
			return // clean EOF or protocol error; either way the conn is done
		}
		resp := s.apply(req)
		if err := w.WriteResponse(resp); err != nil {
			return
		}
		// Pipelining: only pay the syscall when the client has no more
		// requests already buffered.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// apply executes one request against the cache.
func (s *Server) apply(req wire.Request) wire.Response {
	switch req.Op {
	case wire.OpGet:
		v, ok := s.cache.Get(req.Key)
		if !ok {
			return wire.Response{Status: wire.StatusMiss}
		}
		b, ok := v.([]byte)
		if !ok {
			return wire.Response{Status: wire.StatusError,
				Err: fmt.Sprintf("non-wire value of type %T cached under key %d", v, req.Key)}
		}
		return wire.Response{Status: wire.StatusHit, Value: b}
	case wire.OpSet:
		if req.Flags&wire.SetFlagRepair != 0 {
			s.repairSets.Add(1)
		} else {
			s.sets.Add(1)
		}
		// The request value aliases the reader's scratch buffer; copy before
		// it escapes into the cache.
		_, evicted := s.cache.Put(req.Key, append([]byte(nil), req.Value...))
		return wire.Response{Status: wire.StatusOK, Evicted: evicted}
	case wire.OpDel:
		if s.cache.Delete(req.Key) {
			return wire.Response{Status: wire.StatusOK}
		}
		return wire.Response{Status: wire.StatusMiss}
	case wire.OpStats:
		return wire.Response{Status: wire.StatusStats, Stats: s.stats(req.Detail)}
	case wire.OpRehash:
		s.cache.Rehash()
		return wire.Response{Status: wire.StatusOK}
	case wire.OpKeys:
		keys := s.cache.Keys()
		if 1+4+8*len(keys) > wire.MaxFrame {
			return wire.Response{Status: wire.StatusError,
				Err: fmt.Sprintf("KEYS snapshot of %d residents exceeds the frame limit", len(keys))}
		}
		return wire.Response{Status: wire.StatusKeys, Keys: keys}
	default:
		return wire.Response{Status: wire.StatusError, Err: fmt.Sprintf("unknown op %v", req.Op)}
	}
}

func (s *Server) stats(detail bool) *wire.Stats {
	snap := s.cache.Snapshot()
	st := &wire.Stats{
		Hits:              snap.Hits,
		Misses:            snap.Misses,
		Evictions:         snap.Evictions,
		ConflictEvictions: snap.ConflictEvictions,
		FlushEvictions:    snap.FlushEvictions,
		Rehashes:          snap.Rehashes,
		Pending:           uint64(snap.Pending),
		Len:               uint64(snap.Len),
		Capacity:          uint64(snap.Capacity),
		Alpha:             uint64(snap.Alpha),
		Buckets:           uint64(snap.Buckets),
		Sets:              s.sets.Load(),
		RepairSets:        s.repairSets.Load(),
		Migrating:         snap.Migrating,
	}
	if detail {
		shards := s.cache.ShardStats()
		st.Shards = make([]wire.ShardStat, len(shards))
		for i, sh := range shards {
			st.Shards[i] = wire.ShardStat{
				Hits: sh.Hits, Misses: sh.Misses, Evictions: sh.Evictions, Len: uint64(sh.Len),
			}
		}
	}
	return st
}
