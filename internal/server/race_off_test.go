//go:build !race

package server

// raceEnabled reports that the race detector is off.
const raceEnabled = false
