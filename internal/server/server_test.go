package server

import (
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/concurrent"
	"repro/internal/load"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workload"
)

// startServer boots a server on a loopback listener and returns its address.
func startServer(t *testing.T, cfg concurrent.Config) (*Server, string) {
	t.Helper()
	cache, err := concurrent.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(cache)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// TestRepairSetAccounting: SETs split into user and repair counts by the
// flag byte, so replica maintenance never inflates apparent user load.
func TestRepairSetAccounting(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Set(1, []byte("user")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Set(2, []byte("user")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SetFlags(3, wire.SetFlagRepair, []byte("repair")); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sets != 2 || st.RepairSets != 1 {
		t.Errorf("Sets/RepairSets = %d/%d, want 2/1", st.Sets, st.RepairSets)
	}
	// The repair-flagged value is stored normally.
	if v, ok, err := c.Get(3); err != nil || !ok || string(v) != "repair" {
		t.Errorf("Get(3) = %q, %v, %v; repair SET must store normally", v, ok, err)
	}
}

func TestBasicOps(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, ok, err := c.Get(1); err != nil || ok {
		t.Fatalf("Get on empty cache = %v, %v", ok, err)
	}
	if _, err := c.Set(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get(1)
	if err != nil || !ok || string(v) != "one" {
		t.Fatalf("Get(1) = %q, %v, %v", v, ok, err)
	}
	if present, ver, err := c.Del(1); err != nil || !present || ver == 0 {
		t.Fatalf("Del(1) = %v, ver %d, %v; want present with a tombstone version", present, ver, err)
	}
	if present, ver, err := c.Del(1); err != nil || present || ver == 0 {
		t.Fatalf("second Del(1) = %v, ver %d, %v; want absent but still versioned", present, ver, err)
	}
	st, err := c.Stats(true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if int(st.Buckets) != 16 || len(st.Shards) != 16 {
		t.Fatalf("buckets = %d, shards = %d, want 16", st.Buckets, len(st.Shards))
	}
	if err := c.Rehash(); err != nil {
		t.Fatal(err)
	}
}

// TestTopologyAdoption pins the server-side adoption rule: a fresh server
// adopts any offer, a newer epoch wins, an older or equal one is kept out,
// and every response stamps the current epoch.
func TestTopologyAdoption(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if tp, err := c.Members(); err != nil || tp.Epoch != 0 || len(tp.Members) != 0 {
		t.Fatalf("fresh server Members() = %+v, %v; want empty epoch-0 view", tp, err)
	}
	// Fresh server adopts an epoch-0 push (it holds nothing).
	tp, err := c.PushTopology(wire.Topology{Epoch: 0, Members: []string{"a:1"}})
	if err != nil || tp.Epoch != 0 || len(tp.Members) != 1 {
		t.Fatalf("founding push returned %+v, %v", tp, err)
	}
	// Equal epoch with members held: rejected.
	tp, err = c.PushTopology(wire.Topology{Epoch: 0, Members: []string{"b:1"}})
	if err != nil || len(tp.Members) != 1 || tp.Members[0] != "a:1" {
		t.Fatalf("equal-epoch push returned %+v, %v; want the held view kept", tp, err)
	}
	// Newer epoch: adopted, and subsequent responses carry it.
	tp, err = c.PushTopology(wire.Topology{Epoch: 5, Members: []string{"a:1", "b:1"}})
	if err != nil || tp.Epoch != 5 || len(tp.Members) != 2 {
		t.Fatalf("newer push returned %+v, %v", tp, err)
	}
	if _, _, err := c.Get(1); err != nil {
		t.Fatal(err)
	}
	if e := c.LastEpoch(); e != 5 {
		t.Errorf("GET response epoch = %d, want 5", e)
	}
	// Older epoch: rejected, the response reports the newer held view.
	tp, err = c.PushTopology(wire.Topology{Epoch: 4, Members: []string{"z:1"}})
	if err != nil || tp.Epoch != 5 {
		t.Fatalf("stale push returned %+v, %v; want the epoch-5 view kept", tp, err)
	}
	// An empty push is a protocol error at both ends: the client refuses
	// to encode it, and the adoption rule ignores it — adopting a bare
	// high epoch over no members would let a later lower epoch roll the
	// monotonic epoch backwards.
	if _, err := c.PushTopology(wire.Topology{Epoch: 99}); err == nil {
		t.Error("client encoded an empty TOPOLOGY push")
	}
	srv, _ := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 2})
	srv.SetTopology(wire.Topology{Epoch: 5, Members: []string{"a:1"}})
	if got := srv.OfferTopology(wire.Topology{Epoch: 99}); got.Epoch != 5 || len(got.Members) != 1 {
		t.Errorf("empty offer at epoch 99 returned %+v; want the held view kept", got)
	}
}

// TestKeysStreamChunks shrinks the server's chunk size and checks a KEYS
// enumeration arrives as multiple bounded frames that reassemble to
// exactly the resident set.
func TestKeysStreamChunks(t *testing.T) {
	srv, addr := startServer(t, concurrent.Config{Capacity: 1024, Alpha: 64, Seed: 1})
	srv.SetKeysChunk(16)
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 100
	want := map[uint64]bool{}
	for k := uint64(0); k < n; k++ {
		if _, err := c.Set(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		want[k] = true
	}
	frames := 0
	got := map[uint64]bool{}
	if err := c.KeysStream(func(chunk []wire.KeyRec) error {
		frames++
		if len(chunk) > 16 {
			t.Errorf("chunk frame carries %d keys, configured max 16", len(chunk))
		}
		for _, rec := range chunk {
			if rec.Version == 0 || rec.Tombstone {
				t.Errorf("record %+v: want a versioned live record", rec)
			}
			got[rec.Key] = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if frames < n/16 {
		t.Errorf("stream used %d frames for %d keys at chunk 16; want ≥ %d", frames, n, n/16)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d distinct keys, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("key %d missing from stream", k)
		}
	}
}

// TestAsyncRepairApplied: an ASYNC repair SET is acknowledged on accept and
// applied by the background worker shortly after.
func TestAsyncRepairApplied(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.SetFlags(7, wire.SetFlagRepair|wire.SetFlagAsync, []byte("queued")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, ok, err := c.Get(7)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			if string(v) != "queued" {
				t.Fatalf("async repair stored %q, want %q", v, "queued")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async repair not applied within deadline")
		}
		time.Sleep(time.Millisecond)
	}
	st, err := c.Stats(false)
	if err != nil {
		t.Fatal(err)
	}
	if st.RepairSets != 1 || st.RepairsShed != 0 {
		t.Errorf("RepairSets/RepairsShed = %d/%d, want 1/0", st.RepairSets, st.RepairsShed)
	}
}

// TestAsyncRepairShed: with the maintenance queue disabled every ASYNC
// write is shed — acknowledged, dropped, and counted — while synchronous
// repair writes still apply. This is the backpressure contract: shedding
// is visible in STATS, never silent.
func TestAsyncRepairShed(t *testing.T) {
	srv, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	srv.SetRepairQueue(0)
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for k := uint64(0); k < 5; k++ {
		if _, err := c.SetFlags(k, wire.SetFlagRepair|wire.SetFlagAsync, []byte("shed")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.SetFlags(99, wire.SetFlagRepair, []byte("sync")); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(false)
	if err != nil {
		t.Fatal(err)
	}
	if st.RepairsShed != 5 {
		t.Errorf("RepairsShed = %d, want 5", st.RepairsShed)
	}
	if st.RepairSets != 6 {
		t.Errorf("RepairSets = %d, want 6 (shed writes still count as received repairs)", st.RepairSets)
	}
	for k := uint64(0); k < 5; k++ {
		if _, ok, err := c.Get(k); err != nil || ok {
			t.Errorf("shed key %d present = %v, %v; want dropped", k, ok, err)
		}
	}
	if v, ok, err := c.Get(99); err != nil || !ok || string(v) != "sync" {
		t.Errorf("synchronous repair = %q, %v, %v; must apply regardless of the queue", v, ok, err)
	}
}

// TestKeysSnapshot checks the KEYS op returns exactly the resident
// records — live keys plus, since v8, a tombstone record per deleted key.
func TestKeysSnapshot(t *testing.T) {
	// α = 64 slots per bucket: 40 inserts can never overflow a bucket, so
	// the expected key set is exact.
	_, addr := startServer(t, concurrent.Config{Capacity: 1024, Alpha: 64, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	want := map[uint64]bool{}
	for k := uint64(100); k < 140; k++ {
		if _, err := c.Set(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		want[k] = true
	}
	if _, _, err := c.Del(100); err != nil {
		t.Fatal(err)
	}
	delete(want, 100)

	recs, err := c.Keys()
	if err != nil {
		t.Fatal(err)
	}
	// The deleted key stays enumerable as a tombstone record: that is how
	// warm-up, migration, and anti-entropy learn about the delete.
	if len(recs) != len(want)+1 {
		t.Fatalf("KEYS returned %d records, want %d live + 1 tombstone", len(recs), len(want))
	}
	for _, rec := range recs {
		if rec.Key == 100 {
			if !rec.Tombstone || rec.Version == 0 {
				t.Errorf("deleted key record = %+v; want a versioned tombstone", rec)
			}
			continue
		}
		if !want[rec.Key] || rec.Tombstone {
			t.Errorf("KEYS returned unexpected record %+v", rec)
		}
	}
}

// TestEndToEndStatsMatch drives the server over multiple concurrent
// connections with zipf and adversarial workloads and asserts the
// server-side hit/miss counters match the client-observed results exactly.
func TestEndToEndStatsMatch(t *testing.T) {
	const k = 4096
	_, addr := startServer(t, concurrent.Config{Capacity: k, Alpha: 16, Seed: 1})

	zipfKeys := workload.Zipf{Universe: 2 * k, S: 0.9, Shuffle: true}.Generate(30_000, 7)
	adv := adversary.Theorem4{K: k, Delta: 0.1, Sets: 3, Reps: 4}
	advKeys := workload.Fixed{Label: "theorem4", Seq: adv.Build()}.Generate(30_000, 7)

	var clientHits, clientMisses, clientOps int
	for _, tc := range []struct {
		name string
		keys trace.Sequence
	}{
		{"zipf", zipfKeys},
		{"adversarial", advKeys},
	} {
		res, err := load.Run(load.Config{
			Addr:        addr,
			Conns:       4,
			Keys:        tc.keys,
			Pipeline:    8,
			ValueSize:   32,
			ReadThrough: true,
			Verify:      true,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Ops != len(tc.keys) {
			t.Fatalf("%s: ops = %d, want %d", tc.name, res.Ops, len(tc.keys))
		}
		if res.Corrupt != 0 {
			t.Fatalf("%s: %d corrupt payloads", tc.name, res.Corrupt)
		}
		if res.Misses == 0 || res.Hits == 0 {
			t.Fatalf("%s: degenerate run hits=%d misses=%d", tc.name, res.Hits, res.Misses)
		}
		clientHits += res.Hits
		clientMisses += res.Misses
		clientOps += res.Ops
	}

	ctl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	st, err := ctl.Stats(true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != uint64(clientHits) || st.Misses != uint64(clientMisses) {
		t.Fatalf("server stats %d/%d != client observed %d/%d",
			st.Hits, st.Misses, clientHits, clientMisses)
	}
	if st.Hits+st.Misses != uint64(clientOps) {
		t.Fatalf("server total %d != client ops %d", st.Hits+st.Misses, clientOps)
	}
	// Per-shard counters must sum to the global ones.
	var sh, sm uint64
	for _, s := range st.Shards {
		sh += s.Hits
		sm += s.Misses
	}
	if sh != st.Hits || sm != st.Misses {
		t.Fatalf("shard sums %d/%d != global %d/%d", sh, sm, st.Hits, st.Misses)
	}
}

// TestOnlineRehashUnderLoad triggers a REHASH while concurrent connections
// hammer the server and asserts (a) the migration completes under live
// traffic and (b) no entry is lost beyond those the eviction counters
// account for.
func TestOnlineRehashUnderLoad(t *testing.T) {
	const k, universe = 1024, 800
	_, addr := startServer(t, concurrent.Config{Capacity: k, Alpha: 8, Seed: 3})

	ctl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	// Fill the cache.
	for i := uint64(0); i < universe; i++ {
		if _, err := ctl.Set(i, load.Payload(i, 32)); err != nil {
			t.Fatal(err)
		}
	}
	base, err := ctl.Stats(false)
	if err != nil {
		t.Fatal(err)
	}
	if base.Len == 0 {
		t.Fatal("cache empty after fill")
	}

	// Live traffic: 3 connections replaying the key range repeatedly
	// (GET-only, so every later absence is attributable to an eviction).
	keys := workload.Scan{Universe: universe}.Generate(120_000, 0)
	loadDone := make(chan error, 1)
	go func() {
		_, err := load.Run(load.Config{
			Addr: addr, Conns: 3, Keys: keys, Pipeline: 8, Verify: true,
		})
		loadDone <- err
	}()

	// Let traffic start, then rehash online.
	time.Sleep(10 * time.Millisecond)
	if err := ctl.Rehash(); err != nil {
		t.Fatal(err)
	}

	// The migration must finish while traffic is still flowing.
	deadline := time.After(30 * time.Second)
	for {
		st, err := ctl.Stats(false)
		if err != nil {
			t.Fatal(err)
		}
		if st.Rehashes >= 1 && !st.Migrating {
			if st.Pending != 0 {
				t.Fatalf("migration done but pending = %d", st.Pending)
			}
			break
		}
		select {
		case err := <-loadDone:
			if err != nil {
				t.Fatal(err)
			}
			// Traffic ended before the migration did: drain explicitly so
			// the accounting check below still holds, but flag it — the
			// workload is sized to outlast the migration.
			t.Fatalf("load finished before migration completed (pending %d)", st.Pending)
		case <-deadline:
			t.Fatalf("migration did not complete; pending %d", st.Pending)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if err := <-loadDone; err != nil {
		t.Fatal(err)
	}

	// Accounting: every filled key is either still readable (with the right
	// payload) or covered by an eviction counter. Nothing may simply vanish.
	st, err := ctl.Stats(false)
	if err != nil {
		t.Fatal(err)
	}
	missing := 0
	for i := uint64(0); i < universe; i++ {
		v, ok, err := ctl.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			missing++
		} else if !load.VerifyPayload(i, v) {
			t.Fatalf("key %d: corrupt payload after rehash", i)
		}
	}
	// The budget includes fill-time evictions (bucket overflow during the
	// initial SETs): those keys are legitimately absent too. No key was ever
	// re-inserted after the fill, so each missing key needs one eviction.
	evicted := int(st.Evictions) + int(st.FlushEvictions)
	if missing > evicted {
		t.Fatalf("%d keys missing but only %d evictions recorded: entries lost", missing, evicted)
	}
	if missing == universe {
		t.Fatal("every key missing: rehash flushed the cache instead of migrating")
	}
	if st.Rehashes != 1 {
		t.Fatalf("rehashes = %d, want 1", st.Rehashes)
	}
	if int(st.Len) > k {
		t.Fatalf("len %d > capacity %d", st.Len, k)
	}
}

// TestPipelinedMixedBatch checks deep pipelining of heterogeneous ops on
// one connection.
func TestPipelinedMixedBatch(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 256, Alpha: 8, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 500
	for i := uint64(0); i < n; i++ {
		if err := c.EnqueueSet(i, load.Payload(i, 16)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if err := c.EnqueueGet(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		resp, err := c.ReadResponse()
		if err != nil {
			t.Fatalf("SET response %d: %v", i, err)
		}
		if resp.Status != wire.StatusOK {
			t.Fatalf("SET response %d = %v", i, resp.Status)
		}
	}
	hits := 0
	for i := 0; i < n; i++ {
		resp, err := c.ReadResponse()
		if err != nil {
			t.Fatalf("GET response %d: %v", i, err)
		}
		if resp.Status == wire.StatusHit {
			if !load.VerifyPayload(uint64(i), resp.Value) {
				t.Fatalf("GET %d: wrong payload", i)
			}
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no hits in pipelined batch")
	}
}

// getVersion reads key with its stored version over c.
func getVersion(t *testing.T, c *wire.Client, key uint64) (uint64, []byte, bool) {
	t.Helper()
	var (
		ver uint64
		val []byte
		hit bool
	)
	if err := c.GetBatchVersions([]uint64{key}, func(_ int, h bool, v uint64, b []byte) {
		hit = h
		ver = v
		val = append([]byte(nil), b...)
	}); err != nil {
		t.Fatal(err)
	}
	return ver, val, hit
}

// TestVersionedSetLifecycle pins the v4 value-version semantics end to
// end: user SETs assign strictly increasing versions, HITs report them,
// a VERSIONED write below-or-at the stored version is rejected with
// VERSION_STALE (and counted), and one strictly above applies verbatim.
func TestVersionedSetLifecycle(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Set(1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	ver1, _, hit := getVersion(t, c, 1)
	if !hit || ver1 == 0 {
		t.Fatalf("first SET stored version %d (hit %v); want a nonzero version", ver1, hit)
	}
	if _, err := c.Set(1, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	ver2, val, _ := getVersion(t, c, 1)
	if ver2 <= ver1 {
		t.Fatalf("second SET version %d not above first %d; per-key versions must increase", ver2, ver1)
	}
	if string(val) != "v2" {
		t.Fatalf("value = %q, want v2", val)
	}

	// A conditional write at the observed-old version must lose.
	applied, stored, err := c.SetVersioned(1, wire.SetFlagRepair, ver1, []byte("stale"))
	if err != nil {
		t.Fatal(err)
	}
	if applied || stored != ver2 {
		t.Fatalf("stale VERSIONED SET: applied=%v stored=%d, want rejected with stored=%d", applied, stored, ver2)
	}
	if _, val, _ := getVersion(t, c, 1); string(val) != "v2" {
		t.Fatalf("value after rejected write = %q, want v2", val)
	}

	// Equal version must lose too (strictly newer only).
	if applied, _, err = c.SetVersioned(1, wire.SetFlagRepair, ver2, []byte("equal")); err != nil || applied {
		t.Fatalf("equal-version SET applied=%v, err=%v; want rejected", applied, err)
	}

	// Strictly newer applies and stores the carried version verbatim.
	if applied, stored, err = c.SetVersioned(1, wire.SetFlagRepair, ver2+50, []byte("newer")); err != nil || !applied || stored != ver2+50 {
		t.Fatalf("newer VERSIONED SET = (%v, %d, %v), want applied at %d", applied, stored, err, ver2+50)
	}
	ver3, val, _ := getVersion(t, c, 1)
	if ver3 != ver2+50 || string(val) != "newer" {
		t.Fatalf("after newer write: (%d, %q), want (%d, newer)", ver3, val, ver2+50)
	}

	// A VERSIONED write to an absent key populates it (warm-up's case).
	if applied, _, err = c.SetVersioned(2, wire.SetFlagRepair, 123, []byte("seeded")); err != nil || !applied {
		t.Fatalf("VERSIONED SET on absent key = (%v, %v), want applied", applied, err)
	}
	if ver, _, _ := getVersion(t, c, 2); ver != 123 {
		t.Fatalf("seeded version = %d, want 123", ver)
	}

	st, err := c.Stats(false)
	if err != nil {
		t.Fatal(err)
	}
	if st.StaleRepairs != 2 {
		t.Errorf("StaleRepairs = %d, want 2 (one stale, one equal rejection)", st.StaleRepairs)
	}
}

// TestLostUpdateRaceAsyncRepair is the e2e acceptance for the v4 bugfix:
// a REPAIR|ASYNC write of an older value that drains from the maintenance
// queue *after* a user SET of the same key must be rejected, not
// reinstate the old value. Under v3 semantics this exact interleaving
// stored the old value (the documented lost-update caveat); the
// StaleRepairs bump is the proof the write would have applied and was
// refused by the version check alone.
func TestLostUpdateRaceAsyncRepair(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A maintenance actor observes (old, ver) — a fallback read, a warm-up
	// chunk, a migration drain, all look like this.
	if _, err := c.Set(9, []byte("old")); err != nil {
		t.Fatal(err)
	}
	verOld, _, _ := getVersion(t, c, 9)

	// The user SET lands first...
	if _, err := c.Set(9, []byte("new")); err != nil {
		t.Fatal(err)
	}
	// ...then the delayed maintenance write of the old value arrives via
	// the async queue (accepted, applied in the background).
	if applied, _, err := c.SetVersioned(9, wire.SetFlagRepair|wire.SetFlagAsync, verOld, []byte("old")); err != nil || !applied {
		t.Fatalf("ASYNC repair accept = (%v, %v)", applied, err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Stats(false)
		if err != nil {
			t.Fatal(err)
		}
		if st.StaleRepairs == 1 && st.RepairQueueDepth == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queued stale repair not processed: StaleRepairs=%d depth=%d", st.StaleRepairs, st.RepairQueueDepth)
		}
		time.Sleep(time.Millisecond)
	}
	if _, val, _ := getVersion(t, c, 9); string(val) != "new" {
		t.Fatalf("value after delayed repair = %q; the user SET was overwritten by the older value", val)
	}
}

// TestVersionedRepairStress races a user writer against a maintenance
// loop that perpetually re-writes whatever it last observed (half
// synchronous, half through the async queue) — the generalized lost-update
// scenario, run under -race in CI. Whatever the interleaving, the final
// user write must survive every replay of older state, and the versions
// the maintenance loop observes must never go backwards.
func TestVersionedRepairStress(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 256, Alpha: 8, Seed: 1})
	user, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer user.Close()
	maint, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer maint.Close()

	const key = 5
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		var lastVer uint64
		for i := 0; ; i++ {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			var ver uint64
			var val []byte
			var hit bool
			if err := maint.GetBatchVersions([]uint64{key}, func(_ int, h bool, v uint64, b []byte) {
				hit, ver, val = h, v, append([]byte(nil), b...)
			}); err != nil {
				done <- err
				return
			}
			if !hit {
				continue
			}
			if ver < lastVer {
				done <- fmt.Errorf("observed version went backwards: %d after %d", ver, lastVer)
				return
			}
			lastVer = ver
			flags := wire.SetFlagRepair
			if i%2 == 1 {
				flags |= wire.SetFlagAsync
			}
			if _, _, err := maint.SetVersioned(key, flags, ver, val); err != nil {
				done <- err
				return
			}
		}
	}()

	for i := 0; i < 3000; i++ {
		if _, err := user.Set(key, []byte(fmt.Sprintf("user-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The final write: every maintenance observation precedes it, so no
	// replay — queued or in flight — may ever displace it.
	if _, err := user.Set(key, []byte("final")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, val, hit := getVersion(t, user, key)
		if !hit {
			t.Fatal("key vanished under stress")
		}
		if string(val) != "final" {
			t.Fatalf("value = %q; an older maintenance replay displaced the final user SET", val)
		}
		st, err := user.Stats(false)
		if err != nil {
			t.Fatal(err)
		}
		if st.RepairQueueDepth == 0 {
			t.Logf("stress: %d repair sets, %d rejected as stale", st.RepairSets, st.StaleRepairs)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async repair queue did not drain")
		}
		time.Sleep(time.Millisecond)
	}
	// Re-check after the drain: nothing that drained displaced the final.
	if _, val, _ := getVersion(t, user, key); string(val) != "final" {
		t.Fatalf("value after drain = %q, want final", val)
	}
}

// TestOldClientVersionError is the cross-version smoke: a v3 client
// connecting to a v4 server must read the documented version error on its
// first response — the ERROR frame layout is stable across revisions —
// rather than hanging on a silently closed connection.
func TestOldClientVersionError(t *testing.T) {
	_, addr := startServer(t, concurrent.Config{Capacity: 64, Alpha: 4, Seed: 1})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}

	// A version-3 preamble, byte for byte what an old client sends.
	pre := []byte(wire.Magic)
	pre = binary.LittleEndian.AppendUint32(pre, wire.Version-1)
	if _, err := conn.Write(pre); err != nil {
		t.Fatal(err)
	}

	resp, err := wire.NewReader(conn).ReadResponse()
	if err != nil {
		t.Fatalf("old client got %v instead of the documented version error", err)
	}
	if resp.Status != wire.StatusError {
		t.Fatalf("old client got %v, want ERROR", resp.Status)
	}
	if !strings.Contains(resp.Err, "unsupported protocol version") {
		t.Fatalf("error message %q does not name the version mismatch", resp.Err)
	}
}
