package server

import (
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// DefaultLeaseTTL is how long a GETL miss's fill lease stays outstanding.
// A lease bounds how long concurrent missers wait (or eat stale hints)
// for a holder that died mid-load, so it should sit just above the
// slowest plausible origin load; 2s is generous for a cache-fill RPC
// while still bounding a wedged holder's blast radius. Override with
// SetLeaseTTL (cached -lease-ttl).
const DefaultLeaseTTL = 2 * time.Second

// maxLeases bounds the lease table. The table holds one entry per key
// that ever missed through GETL (entries persist to retain stale-hint
// copies), and each entry may pin a value copy, so the bound caps both
// memory and the per-op cost of the single table mutex. At the cap, a
// new miss evicts a spent or expired entry — or, failing a cheap scan,
// an arbitrary live one, whose fill then answers LEASE_LOST (safe: a
// lost lease is always a refusal the holder must tolerate anyway).
const maxLeases = 4096

// lease is the per-key lease state: the outstanding fill token (0 when
// none) with its deadline, plus the last value the lease machinery saw
// for the key — the stale hint zero-token LEASE responses serve so a
// storm of missers gets *something* without stampeding the origin.
//
// The invariant the table maintains: a lease is granted only on a miss,
// and its fill applies only while the key still has no versioned value.
// Any write that lands in between either kills the token here (store's
// invalidation hook) or leaves a nonzero version the fill's conditional
// store refuses — so at most one fill lands per lease, and never over
// fresher state.
type lease struct {
	token    uint64
	expires  time.Time
	staleVer uint64
	staleVal []byte
}

// SetLeaseTTL configures how long GETL fill leases stay outstanding; d ≤ 0
// restores DefaultLeaseTTL.
func (s *Server) SetLeaseTTL(d time.Duration) {
	if d <= 0 {
		d = DefaultLeaseTTL
	}
	s.leaseTTL.Store(int64(d))
}

// leaseMiss answers a GETL whose key is not resident: grant the fill
// lease if nobody holds it (or the holder's expired), otherwise report
// the holder's remaining TTL — with the key's stale copy when one is
// retained, so the misser is served a possibly superseded value instead
// of joining the stampede.
func (s *Server) leaseMiss(key uint64) wire.Response {
	now := time.Now()
	ttl := time.Duration(s.leaseTTL.Load())
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	ls := s.leases[key]
	if ls == nil {
		if s.leases == nil {
			s.leases = make(map[uint64]*lease)
		} else if len(s.leases) >= maxLeases {
			s.evictLeaseLocked(now)
		}
		ls = &lease{}
		s.leases[key] = ls
		s.leaseEntries.Store(int64(len(s.leases)))
	}
	if ls.token != 0 && now.After(ls.expires) {
		ls.token = 0
		s.leasesExpired.Add(1)
		s.leaseLive.Add(-1)
	}
	if ls.token == 0 {
		s.leaseTokens++
		ls.token = s.leaseTokens
		ls.expires = now.Add(ttl)
		s.leasesGranted.Add(1)
		s.leaseLive.Add(1)
		return wire.Response{Status: wire.StatusLease, LeaseToken: ls.token, LeaseTTL: ttl}
	}
	remaining := ls.expires.Sub(now)
	if remaining < time.Millisecond {
		remaining = time.Millisecond
	}
	if ls.staleVal != nil {
		s.staleServes.Add(1)
		// staleVal is immutable once retained (fills and invalidations
		// replace the slice, never write through it), so handing it to the
		// response encoder outside the lock is safe.
		return wire.Response{
			Status: wire.StatusLease, LeaseTTL: remaining,
			Stale: true, Version: ls.staleVer, Value: ls.staleVal,
		}
	}
	return wire.Response{Status: wire.StatusLease, LeaseTTL: remaining}
}

// leaseFill applies a LEASE-flagged SET: the fill lands only while the
// carried token is the key's outstanding lease and the key still has no
// versioned value (see the lease invariant above). val must already be a
// copy the server owns.
func (s *Server) leaseFill(key, token uint64, val []byte) wire.Response {
	now := time.Now()
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	ls := s.leases[key]
	if ls == nil {
		// The winning version is unknown without re-reading the cache
		// (which would skew its hit/miss counters); 0 says "unknown".
		return wire.Response{Status: wire.StatusLeaseLost}
	}
	if ls.token != token {
		// Superseded: a newer write killed this token (its version is the
		// retained stale copy's, when one exists), or a newer lease was
		// granted after this one expired.
		return wire.Response{Status: wire.StatusLeaseLost, Version: ls.staleVer}
	}
	if now.After(ls.expires) {
		ls.token = 0
		s.leasesExpired.Add(1)
		s.leaseLive.Add(-1)
		return wire.Response{Status: wire.StatusLeaseLost, Version: ls.staleVer}
	}
	ls.token = 0
	s.leaseLive.Add(-1)
	applied, ver, evicted := s.storeLeaseFill(key, val)
	if !applied {
		return wire.Response{Status: wire.StatusLeaseLost, Version: ver}
	}
	ls.staleVer, ls.staleVal = ver, val
	return wire.Response{Status: wire.StatusOK, Evicted: evicted, Version: ver}
}

// storeLeaseFill stores a fill conditionally: only while the key has no
// live versioned value — it was absent (or a tombstone) when the lease was
// granted, and any write since would have left a nonzero version (or
// killed the token before this ran). A resident tombstone does not refuse
// the fill: the lease it fills was granted *after* the delete (DEL drops
// the key's lease entry before its tombstone lands), so the fill is a
// fresh post-delete origin load, stored at a version above the
// tombstone's so it wins replication everywhere the tombstone went.
// Called with leaseMu held; it must not re-enter the lease table
// (invalidateLease would deadlock), and it need not — the caller updates
// the stale copy itself.
func (s *Server) storeLeaseFill(key uint64, val []byte) (applied bool, ver uint64, evicted bool) {
	var wasTomb bool
	stored, _, evicted := s.cache.Update(key, func(old interface{}, present bool) (interface{}, bool) {
		var floor uint64
		wasTomb = false
		if present {
			if e, ok := old.(*entry); ok {
				if !e.tomb() && e.ver != 0 {
					ver = e.ver
					return nil, false
				}
				wasTomb = e.tomb()
				floor = e.ver
			}
		}
		ver = uint64(time.Now().UnixNano())
		if ver <= floor {
			ver = floor + 1
		}
		return &entry{ver: ver, val: val}, true
	})
	if !stored {
		return false, ver, false
	}
	s.noteTombstoneFlip(false, wasTomb)
	if evicted {
		s.hotKeys[wire.HotEvict].Record(telemetry.HashKey(key))
	}
	return true, ver, evicted
}

// invalidateLease is store's hook: an applied non-fill write supersedes
// whatever fill is in flight, so kill the key's outstanding token (its
// fill will answer LEASE_LOST) and refresh the stale copy. Gated by the
// caller on leaseEntries, so workloads that never GETL pay nothing.
func (s *Server) invalidateLease(key, ver uint64, val []byte) {
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	ls := s.leases[key]
	if ls == nil {
		return
	}
	if ls.token != 0 {
		ls.token = 0
		s.leaseLive.Add(-1)
	}
	if ver >= ls.staleVer {
		ls.staleVer, ls.staleVal = ver, val
	}
}

// dropLease is DEL's hook: remove the key's lease entry entirely — token
// and stale copy — *before* the cache delete, so neither an in-flight
// fill nor a later stale hint can resurrect the deleted value. Gated by
// the caller on leaseEntries.
func (s *Server) dropLease(key uint64) {
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	ls := s.leases[key]
	if ls == nil {
		return
	}
	if ls.token != 0 {
		s.leaseLive.Add(-1)
	}
	delete(s.leases, key)
	s.leaseEntries.Store(int64(len(s.leases)))
}

// evictLeaseLocked makes room in the full lease table: a short scan
// (map iteration order is effectively random) drops the first spent or
// expired entry it sees, falling back to an arbitrary live one — whose
// holder simply loses its lease, the refusal every holder must already
// tolerate. Called with leaseMu held.
func (s *Server) evictLeaseLocked(now time.Time) {
	var fallback uint64
	found := false
	scanned := 0
	for k, ls := range s.leases {
		if ls.token == 0 || now.After(ls.expires) {
			if ls.token != 0 {
				s.leasesExpired.Add(1)
				s.leaseLive.Add(-1)
			}
			delete(s.leases, k)
			return
		}
		if !found {
			fallback, found = k, true
		}
		if scanned++; scanned >= 8 {
			break
		}
	}
	if found {
		s.leasesExpired.Add(1)
		s.leaseLive.Add(-1)
		delete(s.leases, fallback)
	}
}
