package mirror

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/workload"
)

func lruFactory() policy.Factory { return policy.NewFactory(policy.LRUKind, 0) }

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{Capacity: 0, Alpha: 1, SimCapacity: 1, Factory: lruFactory()},
		{Capacity: 8, Alpha: 3, SimCapacity: 4, Factory: lruFactory()},
		{Capacity: 8, Alpha: 2, SimCapacity: 0, Factory: lruFactory()},
		{Capacity: 8, Alpha: 2, SimCapacity: 9, Factory: lruFactory()},
		{Capacity: 8, Alpha: 2, SimCapacity: 4, Factory: nil},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

// TestMirrorSubsetOfSimulation: without overflows, the mirror's contents
// are exactly the items currently held by the simulation that have been
// placed; overall the mirror is always a subset of the simulation.
func TestMirrorSubsetOfSimulation(t *testing.T) {
	c := mustNew(t, Config{Capacity: 64, Alpha: 8, SimCapacity: 48, Factory: lruFactory(), Seed: 5})
	seq := workload.Uniform{Universe: 100}.Generate(5000, 3)
	for _, x := range seq {
		c.Access(x)
		if c.Len() > c.Capacity() {
			t.Fatal("capacity exceeded")
		}
	}
	simSet := trace.NewItemSet(c.Sim().Items()...)
	for _, it := range c.Items() {
		if !simSet.Contains(it) {
			t.Fatalf("mirror holds %v which the simulation evicted", it)
		}
	}
}

// TestMirrorMatchesSimulationWithoutOverflow: when buckets never overflow,
// every simulation-resident item that was accessed stays mirrored, so the
// mirror's misses equal the fully associative algorithm's misses.
func TestMirrorMatchesSimulationWithoutOverflow(t *testing.T) {
	// 16 distinct items in a 64-slot/8-way cache: overflow impossible until
	// 9 items share a bucket, which 16 random items won't do (checked).
	c := mustNew(t, Config{Capacity: 64, Alpha: 8, SimCapacity: 16, Factory: lruFactory(), Seed: 9})
	fa := core.NewFullAssoc(lruFactory(), 16)
	seq := workload.Uniform{Universe: 16}.Generate(4000, 11)
	for _, x := range seq {
		mh := c.Access(x)
		fh := fa.Access(x)
		if c.Overflows() == 0 && mh != fh {
			t.Fatalf("mirror and simulation disagree on %v without overflow", x)
		}
	}
	if c.Overflows() == 0 && c.Stats().Misses != fa.Stats().Misses {
		t.Fatalf("mirror %d misses, fully associative %d", c.Stats().Misses, fa.Stats().Misses)
	}
}

// TestOverflowsRareWithAugmentation is the technique's selling point: with
// (1−δ)-augmentation in the Lemma 3 regime, forced overflows are rare, and
// the mirror's cost stays close to the fully associative cost.
func TestOverflowsRareWithAugmentation(t *testing.T) {
	const k, alpha = 1024, 64
	kPrime := k / 2
	c := mustNew(t, Config{Capacity: k, Alpha: alpha, SimCapacity: kPrime, Factory: lruFactory(), Seed: 13})
	fa := core.NewFullAssoc(lruFactory(), kPrime)
	seq := workload.Zipf{Universe: 2 * k, S: 0.8, Shuffle: true}.Generate(100_000, 17)
	for _, x := range seq {
		c.Access(x)
		fa.Access(x)
	}
	if c.Overflows() > uint64(len(seq)/1000) {
		t.Fatalf("overflows = %d, expected rare", c.Overflows())
	}
	mirror, full := c.Stats().Misses, fa.Stats().Misses
	if float64(mirror) > 1.02*float64(full) {
		t.Fatalf("mirror misses %d vs fully associative %d", mirror, full)
	}
}

// TestWorksForNonStablePolicies: the whole point of the technique is that
// it works for any policy, including FIFO (which the paper's native
// analysis cannot cover because FIFO is not stable). The mirror's cost must
// track fully associative FIFO.
func TestWorksForNonStablePolicies(t *testing.T) {
	const k, alpha = 512, 32
	kPrime := k * 3 / 4
	for _, kind := range []policy.Kind{policy.FIFOKind, policy.ClockKind} {
		factory := policy.NewFactory(kind, 0)
		c := mustNew(t, Config{Capacity: k, Alpha: alpha, SimCapacity: kPrime, Factory: factory, Seed: 3})
		fa := core.NewFullAssoc(factory, kPrime)
		seq := workload.Phases{PhaseLen: 1000, SetSize: 300, Universe: 2000}.Generate(50_000, 5)
		for _, x := range seq {
			c.Access(x)
			fa.Access(x)
		}
		mirror, full := c.Stats().Misses, fa.Stats().Misses
		if float64(mirror) > 1.05*float64(full) {
			t.Errorf("%v: mirror %d misses vs fully associative %d", kind, mirror, full)
		}
	}
}

func TestResetReplays(t *testing.T) {
	c := mustNew(t, Config{Capacity: 32, Alpha: 4, SimCapacity: 24, Factory: lruFactory(), Seed: 7})
	seq := workload.Uniform{Universe: 60}.Generate(2000, 1)
	first := core.RunSequence(c, seq)
	c.Reset()
	if c.Len() != 0 || c.Overflows() != 0 {
		t.Fatal("Reset left state behind")
	}
	second := core.RunSequence(c, seq)
	if first != second {
		t.Fatalf("replay diverged: %+v vs %+v", first, second)
	}
}

func TestContractInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		c := mustNewQuiet(Config{Capacity: 16, Alpha: 4, SimCapacity: 12, Factory: lruFactory(), Seed: 2})
		for _, r := range raw {
			x := trace.Item(r % 40)
			c.Access(x)
			if !c.Contains(x) {
				return false
			}
			if c.Len() > c.Capacity() {
				return false
			}
			if got := len(c.Items()); got != c.Len() {
				return false
			}
		}
		st := c.Stats()
		return st.Hits+st.Misses == st.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func mustNewQuiet(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}
