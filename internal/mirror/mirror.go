// Package mirror implements the simulation technique the paper's related
// work attributes to Bender et al. [11] (and, for LRU, Frigo et al. [26]):
// a set-associative cache that obeys set-associative *placement* but mirrors
// the eviction decisions of a fully associative algorithm simulated on the
// side. Whenever the simulation (capacity k' = (1−δ)k) evicts a page, the
// mirror evicts the same page from whatever bucket it occupies — even if
// that bucket is underfull. Because the mirror is resource-augmented
// relative to the simulation, Lemma 3 makes bucket overflow unlikely, and
// the mirror's cost tracks the fully associative cost for *any* policy —
// at the price of running the full simulation beside the cache (which is
// exactly why the paper calls the approach computationally expensive and
// develops the native analysis instead).
package mirror

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hashfn"
	"repro/internal/policy"
	"repro/internal/trace"
)

// Cache is a set-associative cache mirroring a fully associative policy.
// It implements core.Cache.
type Cache struct {
	capacity int
	alpha    int
	hasher   *hashfn.Random
	sim      policy.Policy // the fully associative algorithm A_{k'}
	// buckets[i] holds the items resident in physical bucket i. Eviction
	// order within a bucket is dictated by the simulation, so plain sets
	// suffice — no per-bucket policy state.
	buckets []map[trace.Item]struct{}
	where   map[trace.Item]int
	stats   core.Stats
	// Overflows counts forced evictions: insertions into a full bucket,
	// which evict a simulation-resident item and break the mirror ⊆ sim
	// invariant the analysis wants to keep rare.
	overflows uint64
}

var _ core.Cache = (*Cache)(nil)

// Config describes a mirror cache.
type Config struct {
	// Capacity is the mirror's slot count k.
	Capacity int
	// Alpha is the bucket size; must divide Capacity.
	Alpha int
	// SimCapacity is the simulated fully associative cache size k' < k; the
	// gap is the resource augmentation that keeps buckets from filling.
	SimCapacity int
	// Factory builds the simulated fully associative policy.
	Factory policy.Factory
	// Seed drives the indexing hash.
	Seed uint64
}

// New builds a mirror cache.
func New(cfg Config) (*Cache, error) {
	if cfg.Capacity <= 0 || cfg.Alpha <= 0 || cfg.Capacity%cfg.Alpha != 0 {
		return nil, fmt.Errorf("mirror: bad geometry k=%d α=%d", cfg.Capacity, cfg.Alpha)
	}
	if cfg.SimCapacity <= 0 || cfg.SimCapacity > cfg.Capacity {
		return nil, fmt.Errorf("mirror: sim capacity %d must be in (0, %d]", cfg.SimCapacity, cfg.Capacity)
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("mirror: nil factory")
	}
	n := cfg.Capacity / cfg.Alpha
	c := &Cache{
		capacity: cfg.Capacity,
		alpha:    cfg.Alpha,
		hasher:   hashfn.NewRandom(cfg.Seed, n),
		sim:      cfg.Factory(cfg.SimCapacity),
		buckets:  make([]map[trace.Item]struct{}, n),
		where:    make(map[trace.Item]int, cfg.Capacity),
	}
	for i := range c.buckets {
		c.buckets[i] = make(map[trace.Item]struct{}, cfg.Alpha)
	}
	return c, nil
}

// Access implements core.Cache.
func (c *Cache) Access(x trace.Item) bool {
	hit, _, _ := c.AccessDetail(x)
	return hit
}

// AccessDetail implements core.Cache. The reported eviction is the one the
// mirror performed for this access: the simulation's victim if it was still
// mirrored, or a forced overflow victim.
func (c *Cache) AccessDetail(x trace.Item) (hit bool, evicted trace.Item, didEvict bool) {
	c.stats.Accesses++

	// Drive the simulation first; mirror its eviction.
	_, simVictim, simEvicted := c.sim.Request(x)
	if be, ok := c.sim.(policy.BatchEvictions); ok {
		for _, v := range be.TakeEvictions() {
			c.remove(v)
		}
	}
	if simEvicted {
		if c.remove(simVictim) {
			evicted, didEvict = simVictim, true
			c.stats.Evictions++
		}
	}

	b := c.hasher.Bucket(x)
	if _, ok := c.buckets[b][x]; ok {
		c.stats.Hits++
		return true, evicted, didEvict
	}
	c.stats.Misses++
	if len(c.buckets[b]) >= c.alpha {
		// Forced overflow: evict an arbitrary resident of the full bucket.
		// (The analysis only needs this to be rare; determinism comes from
		// picking the smallest item.)
		victim := trace.Item(0)
		first := true
		for it := range c.buckets[b] {
			if first || it < victim {
				victim = it
				first = false
			}
		}
		c.remove(victim)
		c.overflows++
		c.stats.Evictions++
		evicted, didEvict = victim, true
	}
	c.buckets[b][x] = struct{}{}
	c.where[x] = b
	return false, evicted, didEvict
}

func (c *Cache) remove(x trace.Item) bool {
	b, ok := c.where[x]
	if !ok {
		return false
	}
	delete(c.buckets[b], x)
	delete(c.where, x)
	return true
}

// Contains implements core.Cache.
func (c *Cache) Contains(x trace.Item) bool {
	_, ok := c.where[x]
	return ok
}

// Len implements core.Cache.
func (c *Cache) Len() int { return len(c.where) }

// Capacity implements core.Cache.
func (c *Cache) Capacity() int { return c.capacity }

// Items implements core.Cache.
func (c *Cache) Items() []trace.Item {
	out := make([]trace.Item, 0, len(c.where))
	for it := range c.where {
		out = append(out, it)
	}
	return out
}

// Stats implements core.Cache.
func (c *Cache) Stats() core.Stats { return c.stats }

// Reset implements core.Cache.
func (c *Cache) Reset() {
	c.sim.Reset()
	for i := range c.buckets {
		c.buckets[i] = make(map[trace.Item]struct{}, c.alpha)
	}
	c.where = make(map[trace.Item]int, c.capacity)
	c.stats = core.Stats{}
	c.overflows = 0
}

// Overflows returns the number of forced bucket-overflow evictions — the
// quantity the resource augmentation is supposed to keep near zero.
func (c *Cache) Overflows() uint64 { return c.overflows }

// Sim exposes the simulated policy (tests compare against it directly).
func (c *Cache) Sim() policy.Policy { return c.sim }
